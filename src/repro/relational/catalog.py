"""Catalog: schemas, tables, views, indexes and statistics.

The :class:`Table` object is the integration point of the storage layer: it
owns a heap file, keeps every index on the table in sync on each write, and
enforces declarative constraints (NOT NULL, PRIMARY KEY via a unique index,
FOREIGN KEY by lookup in the referenced table).  Foreign keys additionally
feed the XNF layer's updatability analysis (section 3.7 of the paper: a
relationship defined by a foreign key is disconnected by nullifying the FK).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import threading

from repro.errors import CatalogError, ExecutionError, IntegrityError, PageNotFoundError
from repro.relational.indexes import BTreeIndex, HashIndex, Index
from repro.relational.storage import BufferPool, HeapFile, RID
from repro.relational.storage.sharded import PartitionSpec, ShardedHeap
from repro.relational.types import SQLType, sort_key


@dataclass
class Column:
    """One column of a table schema."""

    name: str
    sql_type: SQLType
    nullable: bool = True
    primary_key: bool = False
    references: Optional[Tuple[str, str]] = None  # (table, column)

    def __str__(self) -> str:
        parts = [self.name, str(self.sql_type)]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        elif not self.nullable:
            parts.append("NOT NULL")
        if self.references:
            parts.append(f"REFERENCES {self.references[0]}({self.references[1]})")
        return " ".join(parts)


@dataclass
class ColumnStats:
    """Optimizer statistics for one column (filled in by ANALYZE)."""

    n_distinct: int = 0
    null_count: int = 0
    min_value: Any = None
    max_value: Any = None


@dataclass
class TableStats:
    """Optimizer statistics for one table."""

    row_count: int = 0
    page_count: int = 1
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    analyzed: bool = False


class Table:
    """A base table: schema + heap file + indexes + constraints."""

    #: set on :class:`ShardedTable` / :class:`ShardView` subclasses
    is_sharded = False
    is_shard_view = False

    def __init__(self, name: str, columns: Sequence[Column], buffer_pool: BufferPool):
        self.name = name
        self.columns = list(columns)
        self.column_positions = {col.name: pos for pos, col in enumerate(columns)}
        if len(self.column_positions) != len(self.columns):
            raise CatalogError(f"duplicate column name in table {name}")
        self.heap = HeapFile(name, buffer_pool)
        self.indexes: Dict[str, Index] = {}
        self.stats = TableStats()
        self._catalog: Optional["Catalog"] = None
        #: MVCC version-store key: shard views read their parent's entries
        #: (writes always go through the parent facade), every other table
        #: reads its own.
        self.mvcc_name = name
        #: optional ``(rid, row) -> bool`` filter applied to version-store
        #: candidates; shard views install one so cross-shard versions of the
        #: shared parent key are not double-counted.
        self._mvcc_accept = None
        pk_columns = [col.name for col in columns if col.primary_key]
        if pk_columns:
            self.add_index(f"pk_{name}", pk_columns, unique=True, kind="btree")

    # -- schema helpers -------------------------------------------------------

    def column_names(self) -> List[str]:
        return [col.name for col in self.columns]

    def position_of(self, column: str) -> int:
        try:
            return self.column_positions[column]
        except KeyError:
            raise CatalogError(f"table {self.name} has no column {column!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    # -- index management --------------------------------------------------------

    def add_index(
        self,
        index_name: str,
        column_names: Sequence[str],
        unique: bool = False,
        kind: str = "btree",
    ) -> Index:
        if index_name in self.indexes:
            raise CatalogError(f"index {index_name} already exists on {self.name}")
        positions = [self.position_of(col) for col in column_names]
        cls = BTreeIndex if kind == "btree" else HashIndex
        index = cls(index_name, self.name, column_names, positions, unique=unique)
        # Backfill from existing rows.
        for rid, row in self.heap.scan():
            index.insert_row(row, rid)
        self.indexes[index_name] = index
        if self._catalog is not None:
            self._catalog.bump_version(self.name)
        return index

    def drop_index(self, index_name: str) -> None:
        if index_name not in self.indexes:
            raise CatalogError(f"no index {index_name} on table {self.name}")
        del self.indexes[index_name]
        if self._catalog is not None:
            self._catalog.bump_version(self.name)

    def index_on(self, column_names: Sequence[str], require_range: bool = False) -> Optional[Index]:
        """Find an index whose key is exactly *column_names* (order-sensitive)."""
        wanted = list(column_names)
        for index in self.indexes.values():
            if index.column_names == wanted:
                if require_range and not index.supports_range:
                    continue
                return index
        return None

    # -- constraint checks ---------------------------------------------------------

    def _check_row(self, row: Tuple[Any, ...], skip_fk: bool = False) -> Tuple[Any, ...]:
        if len(row) != len(self.columns):
            raise IntegrityError(
                f"table {self.name} expects {len(self.columns)} values, got {len(row)}"
            )
        coerced = []
        for col, value in zip(self.columns, row):
            value = col.sql_type.validate(value)
            if value is None and (not col.nullable or col.primary_key):
                raise IntegrityError(
                    f"column {self.name}.{col.name} may not be NULL"
                )
            coerced.append(value)
        result = tuple(coerced)
        if not skip_fk:
            self._check_foreign_keys(result)
        return result

    def _check_foreign_keys(self, row: Tuple[Any, ...]) -> None:
        if self._catalog is None:
            return
        for col, value in zip(self.columns, row):
            if col.references is None or value is None:
                continue
            ref_table_name, ref_column = col.references
            ref_table = self._catalog.tables.get(ref_table_name)
            if ref_table is None:
                raise IntegrityError(
                    f"FK {self.name}.{col.name} references missing table {ref_table_name}"
                )
            if not ref_table.contains_value(ref_column, value):
                raise IntegrityError(
                    f"FK violation: {self.name}.{col.name}={value!r} has no match "
                    f"in {ref_table_name}.{ref_column}"
                )

    def contains_value(self, column: str, value: Any) -> bool:
        index = self.index_on([column])
        if index is not None:
            return bool(index.search((value,)))
        pos = self.position_of(column)
        return any(row[pos] == value for _, row in self.heap.scan())

    # -- write path -------------------------------------------------------------

    def insert(self, row: Sequence[Any], rid_hint: Optional[RID] = None) -> RID:
        """Validate, store and index one row; returns its RID."""
        checked = self._check_row(tuple(row))
        rid = self.heap.insert(checked) if rid_hint is None else rid_hint
        try:
            for index in self.indexes.values():
                index.insert_row(checked, rid)
        except IntegrityError:
            if rid_hint is None:
                self.heap.delete(rid)
            for index in self.indexes.values():
                index.delete_row(checked, rid)
            raise
        self.stats.row_count = self.heap.row_count
        return rid

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> List[RID]:
        """Validate and bulk-append many rows, then maintain indexes.

        Equivalent to :meth:`insert` per row but amortises page pinning via
        :meth:`HeapFile.append_rows` and validates column-at-a-time (one
        tight loop per column instead of one dispatch per value); the XNF
        layer uses it to refill scratch worktables batch-at-a-time.
        All-or-nothing per call: a constraint violation rolls back every row
        of this batch.
        """
        checked = self._check_rows_bulk(rows)
        rids = self.heap.append_rows(checked)
        done = 0
        try:
            for row, rid in zip(checked, rids):
                for index in self.indexes.values():
                    index.insert_row(row, rid)
                done += 1
        except IntegrityError:
            # Un-index the fully indexed prefix plus the partially indexed
            # failing row (delete_row tolerates missing entries), then drop
            # the heap rows.
            for row, rid in zip(checked[: done + 1], rids[: done + 1]):
                for index in self.indexes.values():
                    index.delete_row(row, rid)
            for rid in rids:
                self.heap.delete(rid)
            self.stats.row_count = self.heap.row_count
            raise
        self.stats.row_count = self.heap.row_count
        return rids

    def _check_rows_bulk(
        self, rows: Sequence[Sequence[Any]]
    ) -> List[Tuple[Any, ...]]:
        """Column-wise :meth:`_check_row` for bulk loads.

        Same checks, transposed: validate/coerce one column vector at a
        time, test NOT NULL per column, and probe each FK column once per
        *distinct* value instead of once per row.
        """
        expected = len(self.columns)
        for row in rows:
            if len(row) != expected:
                raise IntegrityError(
                    f"table {self.name} expects {expected} values, "
                    f"got {len(row)}"
                )
        if not rows:
            return []
        in_cols = list(zip(*rows))
        out_cols = []
        for col, values in zip(self.columns, in_cols):
            validate = col.sql_type.validate
            coerced = [validate(v) for v in values]
            if (not col.nullable or col.primary_key) and None in coerced:
                raise IntegrityError(
                    f"column {self.name}.{col.name} may not be NULL"
                )
            if col.references is not None and self._catalog is not None:
                ref_table_name, ref_column = col.references
                ref_table = self._catalog.tables.get(ref_table_name)
                if ref_table is None:
                    raise IntegrityError(
                        f"FK {self.name}.{col.name} references missing "
                        f"table {ref_table_name}"
                    )
                for value in set(coerced):
                    if value is None:
                        continue
                    if not ref_table.contains_value(ref_column, value):
                        raise IntegrityError(
                            f"FK violation: {self.name}.{col.name}={value!r} "
                            f"has no match in {ref_table_name}.{ref_column}"
                        )
            out_cols.append(coerced)
        return list(zip(*out_cols))

    def insert_prechecked(self, row: Tuple[Any, ...], rid: RID) -> None:
        """Index a row that was placed by a clustering bulk loader."""
        checked = self._check_row(row)
        for index in self.indexes.values():
            index.insert_row(checked, rid)
        self.stats.row_count = self.heap.row_count

    def update(self, rid: RID, new_row: Sequence[Any]) -> None:
        old_row = self.heap.fetch_row(rid)
        checked = self._check_row(tuple(new_row))
        for index in self.indexes.values():
            index.update_row(old_row, checked, rid)
        self.heap.update(rid, checked)
        self.stats.row_count = self.heap.row_count

    def delete(self, rid: RID) -> Tuple[Any, ...]:
        row = self.heap.fetch_row(rid)
        for index in self.indexes.values():
            index.delete_row(row, rid)
        self.heap.delete(rid)
        self.stats.row_count = self.heap.row_count
        return row

    # -- undo/redo (transaction manager back-calls; constraints are skipped
    # because these restore a state that was valid when first produced) --------

    def undo_insert(self, rid: RID) -> None:
        row = self.heap.fetch_row(rid)
        for index in self.indexes.values():
            index.delete_row(row, rid)
        self.heap.delete(rid)
        self.stats.row_count = self.heap.row_count

    def undo_delete(self, row: Tuple[Any, ...]) -> RID:
        rid = self.heap.insert(row)
        for index in self.indexes.values():
            index.insert_row(row, rid)
        self.stats.row_count = self.heap.row_count
        return rid

    def undo_update(self, rid: RID, before: Tuple[Any, ...]) -> None:
        old_row = self.heap.fetch_row(rid)
        for index in self.indexes.values():
            index.update_row(old_row, before, rid)
        self.heap.update(rid, before)

    # -- redo (WAL replay into a fresh schema) -----------------------------------

    def redo_insert(self, row: Tuple[Any, ...]) -> None:
        self.undo_delete(row)

    def redo_delete(self, row: Tuple[Any, ...]) -> None:
        for rid, existing in self.heap.scan():
            if existing == row:
                self.undo_insert(rid)
                return

    def redo_update(self, before: Tuple[Any, ...], after: Tuple[Any, ...]) -> None:
        for rid, existing in self.heap.scan():
            if existing == before:
                self.undo_update(rid, after)
                return

    def stamp_lsn(self, rid: RID, lsn: int) -> None:
        """Record *lsn* as the page LSN of the page holding *rid*.

        Called by the transaction manager right after logging a change to
        this row; crash recovery's redo pass replays a record only when the
        on-disk page LSN is older.
        """
        pool = self.heap.buffer_pool
        page = pool.fetch(rid.page_id)
        try:
            if lsn > page.page_lsn:
                page.page_lsn = lsn
        finally:
            pool.unpin(rid.page_id, dirty=True)

    # -- read path ---------------------------------------------------------------
    #
    # When the owning catalog runs in MVCC mode (``catalog.mvcc`` holds the
    # database's MVCCController) and the calling thread has an ambient
    # snapshot, reads resolve rows against the version store page by page:
    # copy the page's slots first, *then* consult the store.  Writers create
    # their version entry before touching the heap, so a table that checks
    # clean after the copy proves the copied rows are unmodified baseline
    # images — those pages skip RID construction and per-row resolution
    # entirely and are only remembered at page granularity for the final
    # candidates pass.  A scan-start-only cleanliness check would be
    # unsound (a writer may start versioning the table mid-scan), which is
    # why the verdict is re-taken per page, always after the slot copy.

    def _mvcc_read_state(self):
        """``(store, snapshot)`` when snapshot resolution applies to this
        table right now, else None (use the plain heap path)."""
        catalog = self._catalog
        mv = catalog.mvcc if catalog is not None else None
        if mv is None:
            return None
        snap = mv.current_snapshot()
        if snap is None:
            return None
        return mv.store, snap

    def scan(self) -> Iterator[Tuple[RID, Tuple[Any, ...]]]:
        state = self._mvcc_read_state()
        if state is None:
            return self.heap.scan()
        return self._scan_mvcc(*state)

    def _scan_mvcc(self, store, snap) -> Iterator[Tuple[RID, Tuple[Any, ...]]]:
        name = self.mvcc_name
        # Bound lock-free clean check (see VersionStore.dirty for why no
        # lock is needed); bound once because small-table scans are hot.
        entries_of = store._tables.get
        seen: set = set()
        seen_pages: set = set()
        for page_id in self.heap.page_ids():
            pairs = self.heap.scan_page_pairs(page_id)
            # The check must follow the page read: entry creation precedes
            # heap mutation, so a clean verdict proves the rows just read
            # are baseline images.
            if not entries_of(name):
                seen_pages.add(page_id)
                yield from pairs
                continue
            seen.update(rid for rid, _ in pairs)
            yield from store.resolve_batch(name, pairs, snap)
        # rows absent from the heap (committed or pending deletes) whose
        # images are still visible to this snapshot
        if entries_of(name):
            accept = self._mvcc_accept
            for rid, image in store.candidates(name, snap, seen, seen_pages):
                if accept is None or accept(rid, image):
                    yield rid, image

    def scan_row_chunks(self) -> Iterator[List[Tuple[Any, ...]]]:
        """Row chunks for the vectorized scan (page-at-a-time on the fast
        path, snapshot-resolved batches under MVCC)."""
        state = self._mvcc_read_state()
        if state is None:
            return self.heap.scan_row_chunks()
        return self._scan_chunks_mvcc(*state)

    def _scan_chunks_mvcc(self, store, snap) -> Iterator[List[Tuple[Any, ...]]]:
        name = self.mvcc_name
        entries_of = store._tables.get  # lock-free, see VersionStore.dirty
        seen: set = set()
        seen_pages: set = set()
        for page_id, rows in self.heap.scan_page_rows():
            # Check after the page read, as in _scan_mvcc.  Clean page:
            # the rows pass through untouched — the same shape (and cost)
            # as the non-MVCC heap chunk scan.
            if not entries_of(name):
                seen_pages.add(page_id)
                if rows:
                    yield rows
                continue
            # Dirty: re-read the page with RIDs and resolve.  The re-read
            # is the authoritative one — resolution is sound against
            # whatever heap state it observes.
            pairs = self.heap.scan_page_pairs(page_id)
            seen.update(rid for rid, _ in pairs)
            rows = [image for _rid, image in store.resolve_batch(name, pairs, snap)]
            if rows:
                yield rows
        if entries_of(name):
            accept = self._mvcc_accept
            extra = [
                image
                for rid, image in store.candidates(name, snap, seen, seen_pages)
                if accept is None or accept(rid, image)
            ]
            if extra:
                yield extra

    def fetch(self, rid: RID) -> Tuple[Any, ...]:
        return self.heap.fetch_row(rid)

    def fetch_visible(self, rid: RID) -> Optional[Tuple[Any, ...]]:
        """MVCC-aware point fetch: the row image visible to the ambient
        snapshot, or None when the row is invisible to it.  Index scans use
        this so probes never observe uncommitted or too-new versions."""
        state = self._mvcc_read_state()
        if state is None:
            return self.heap.fetch_row(rid)
        store, snap = state
        try:
            heap_row = self.heap.fetch_row(rid)
        except (ExecutionError, PageNotFoundError):
            # gone from the heap; an older committed image may still apply
            heap_row = None
        return store.resolve(self.mvcc_name, rid, heap_row, snap)

    def truncate(self) -> None:
        """Drop all rows but keep the schema and index definitions.

        Plans compiled against this Table object remain valid: the heap and
        index *objects* survive, only their contents reset.  The XNF layer
        uses this to refill per-round delta worktables in place.
        """
        self.heap.truncate()
        for index in self.indexes.values():
            index.clear()
        self.stats = TableStats()

    # -- statistics ----------------------------------------------------------------

    def analyze(self) -> TableStats:
        """Compute exact statistics for the optimizer."""
        stats = TableStats(analyzed=True)
        distinct: List[set] = [set() for _ in self.columns]
        nulls = [0] * len(self.columns)
        minima: List[Any] = [None] * len(self.columns)
        maxima: List[Any] = [None] * len(self.columns)
        count = 0
        for _, row in self.heap.scan():
            count += 1
            for pos, value in enumerate(row):
                if value is None:
                    nulls[pos] += 1
                    continue
                distinct[pos].add(value)
                if minima[pos] is None or sort_key(value) < sort_key(minima[pos]):
                    minima[pos] = value
                if maxima[pos] is None or sort_key(value) > sort_key(maxima[pos]):
                    maxima[pos] = value
        stats.row_count = count
        stats.page_count = max(1, self.heap.num_pages())
        for pos, col in enumerate(self.columns):
            stats.columns[col.name] = ColumnStats(
                n_distinct=len(distinct[pos]),
                null_count=nulls[pos],
                min_value=minima[pos],
                max_value=maxima[pos],
            )
        self.stats = stats
        if self._catalog is not None:
            self._catalog.bump_version(self.name)
        return stats


class ShardedTable(Table):
    """A table whose heap is hash/range-partitioned into N shards.

    The full read/write API of :class:`Table` is inherited unchanged: the
    :class:`~repro.relational.storage.sharded.ShardedHeap` routes every heap
    operation to the owning shard, and indexes (which key on globally unique
    RIDs from the shared buffer pool) span all shards.  The per-shard child
    heaps are additionally exposed as read-only :class:`ShardView` tables so
    the XNF scatter stage can target one shard with ordinary SQL.
    """

    is_sharded = True

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        buffer_pool: BufferPool,
        partition: PartitionSpec,
    ):
        super().__init__(name, columns, buffer_pool)
        partition.bind(self.column_positions)
        self.partition = partition
        self.heap = ShardedHeap(name, buffer_pool, partition)
        self.shard_views: List["ShardView"] = [
            ShardView(self, shard_id) for shard_id in range(partition.num_shards)
        ]

    def shard_view_name(self, shard_id: int) -> str:
        return f"{self.name}__S{shard_id}"


class ShardView(Table):
    """Read-only window onto one shard of a :class:`ShardedTable`.

    Registered in the catalog as a real (non-virtual) table so per-shard
    generated queries stay plan-cacheable; constraints and indexes are
    stripped (all DML goes through the parent facade, which owns them).
    Under MVCC the view resolves against the *parent's* version-store
    entries — filtered to this shard by physical page ownership, falling
    back to partition routing for images whose row left the heap.
    """

    is_shard_view = True

    def __init__(self, parent: ShardedTable, shard_id: int):
        # Deliberately no super().__init__(): the view shares the parent's
        # buffer pool pages via the child heap and must not allocate a heap
        # or pk index of its own.
        self.name = parent.shard_view_name(shard_id)
        self.parent = parent
        self.shard_id = shard_id
        self.columns = [Column(col.name, col.sql_type) for col in parent.columns]
        self.column_positions = dict(parent.column_positions)
        self.heap = parent.heap.shards[shard_id]
        self.indexes: Dict[str, Index] = {}
        self.stats = TableStats()
        self._catalog: Optional["Catalog"] = None
        self.mvcc_name = parent.name
        sharded_heap = parent.heap
        spec = parent.partition

        def _accept(rid: RID, row: Tuple[Any, ...]) -> bool:
            owner = sharded_heap.owner_of(rid.page_id)
            if owner is not None:
                return owner == shard_id
            return spec.route(row) == shard_id

        self._mvcc_accept = _accept

    # -- write path: refused (DML must go through the parent facade) ----------

    def _read_only(self) -> CatalogError:
        return CatalogError(
            f"{self.name} is a read-only shard view of {self.parent.name}"
        )

    def insert(self, row: Sequence[Any], rid_hint: Optional[RID] = None) -> RID:
        raise self._read_only()

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> List[RID]:
        raise self._read_only()

    def insert_prechecked(self, row: Tuple[Any, ...], rid: RID) -> None:
        raise self._read_only()

    def update(self, rid: RID, new_row: Sequence[Any]) -> None:
        raise self._read_only()

    def delete(self, rid: RID) -> Tuple[Any, ...]:
        raise self._read_only()

    def truncate(self) -> None:
        raise self._read_only()

    def add_index(
        self,
        index_name: str,
        column_names: Sequence[str],
        unique: bool = False,
        kind: str = "btree",
    ) -> Index:
        raise self._read_only()

    def drop_index(self, index_name: str) -> None:
        raise self._read_only()


class VirtualTable:
    """A read-only system table backed by a snapshot provider function.

    The provider is called afresh on every :meth:`scan`, so each scan sees
    the *live* registry state even when the plan that drives it was served
    from the plan cache (the cache stores plans, not results; see
    ``CacheEntry.volatile``).  Virtual tables duck-type the read path of
    :class:`Table` — columns, positions, stats, ``scan()``/``fetch()`` —
    which is all the planner and executor need; every write-path entry
    point raises :class:`CatalogError`.
    """

    is_virtual = True

    def __init__(self, name: str, columns: Sequence[Column], provider):
        self.name = name.upper()
        self.columns = list(columns)
        self.column_positions = {col.name: pos for pos, col in enumerate(columns)}
        if len(self.column_positions) != len(self.columns):
            raise CatalogError(f"duplicate column name in table {name}")
        self.provider = provider
        self.indexes: Dict[str, Index] = {}
        # Nominal row-count guess so the cost model has something to chew
        # on before an explicit ANALYZE; never trusted for correctness.
        self.stats = TableStats(row_count=16)
        self._catalog: Optional["Catalog"] = None

    # -- schema helpers (mirrors Table) ---------------------------------------

    def column_names(self) -> List[str]:
        return [col.name for col in self.columns]

    def position_of(self, column: str) -> int:
        try:
            return self.column_positions[column]
        except KeyError:
            raise CatalogError(f"table {self.name} has no column {column!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def index_on(self, column_names: Sequence[str], require_range: bool = False) -> Optional[Index]:
        return None

    def contains_value(self, column: str, value: Any) -> bool:
        pos = self.position_of(column)
        return any(row[pos] == value for _, row in self.scan())

    # -- read path ----------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Pull a fresh snapshot from the provider and yield (rid, row)."""
        width = len(self.columns)
        for rid, row in enumerate(self.provider()):
            values = tuple(row)
            if len(values) != width:
                raise CatalogError(
                    f"virtual table {self.name} provider yielded {len(values)} "
                    f"values, expected {width}"
                )
            yield rid, values

    def fetch(self, rid: int) -> Tuple[Any, ...]:
        for current, row in self.scan():
            if current == rid:
                return row
        raise CatalogError(f"virtual table {self.name}: no row {rid}")

    # -- statistics -----------------------------------------------------------------

    def analyze(self) -> TableStats:
        """Exact statistics over one provider snapshot (they age immediately)."""
        stats = TableStats(analyzed=True)
        distinct: List[set] = [set() for _ in self.columns]
        nulls = [0] * len(self.columns)
        minima: List[Any] = [None] * len(self.columns)
        maxima: List[Any] = [None] * len(self.columns)
        count = 0
        for _, row in self.scan():
            count += 1
            for pos, value in enumerate(row):
                if value is None:
                    nulls[pos] += 1
                    continue
                distinct[pos].add(value)
                if minima[pos] is None or sort_key(value) < sort_key(minima[pos]):
                    minima[pos] = value
                if maxima[pos] is None or sort_key(value) > sort_key(maxima[pos]):
                    maxima[pos] = value
        stats.row_count = count
        for pos, col in enumerate(self.columns):
            stats.columns[col.name] = ColumnStats(
                n_distinct=len(distinct[pos]),
                null_count=nulls[pos],
                min_value=minima[pos],
                max_value=maxima[pos],
            )
        self.stats = stats
        if self._catalog is not None:
            self._catalog.bump_version(self.name)
        return stats

    # -- write path: refused ---------------------------------------------------------

    def _read_only(self) -> "CatalogError":
        return CatalogError(f"{self.name} is a read-only system table")

    def insert(self, row: Sequence[Any], rid_hint=None):
        raise self._read_only()

    def insert_prechecked(self, row, rid) -> None:
        raise self._read_only()

    def update(self, rid, new_row) -> None:
        raise self._read_only()

    def delete(self, rid):
        raise self._read_only()

    def truncate(self) -> None:
        raise self._read_only()

    def add_index(self, index_name, column_names, unique=False, kind="btree"):
        raise self._read_only()

    def drop_index(self, index_name) -> None:
        raise self._read_only()


@dataclass
class ViewDefinition:
    """A named view: its SQL text and parsed body (filled by the engine)."""

    name: str
    sql_text: str
    body: Any  # parsed SelectStmt AST; typed Any to avoid an import cycle


class Catalog:
    """Name space of tables, views and their indexes."""

    def __init__(self, buffer_pool: BufferPool):
        self.buffer_pool = buffer_pool
        self.tables: Dict[str, Table] = {}
        self.views: Dict[str, ViewDefinition] = {}
        #: read-only system tables backed by snapshot providers; resolved by
        #: :meth:`get_table` after base tables so user tables always win.
        self.virtual_tables: Dict[str, VirtualTable] = {}
        #: monotonically increasing per-object schema/stats versions, keyed
        #: by upper-cased table or view name.  Cached plans record the
        #: versions of every object they reference; a later mismatch marks
        #: the plan stale.  Names are never reset on drop, so a DROP+CREATE
        #: of the same name yields a fresh version (the plan holds the old
        #: Table object and must not survive).
        self._object_versions: Dict[str, int] = {}
        self._version_clock = 0
        #: the owning Database's MVCCController when MVCC mode is enabled;
        #: Table read paths consult it (duck-typed — the catalog never
        #: imports the txn layer)
        self.mvcc: Optional[Any] = None
        # serializes name-space and version mutations across session
        # threads; lookups stay lock-free (single dict reads are atomic)
        self._mutex = threading.RLock()

    def bump_version(self, name: str) -> None:
        """Record a schema/stats change to *name* (table or view)."""
        with self._mutex:
            self._version_clock += 1
            self._object_versions[name.upper()] = self._version_clock

    def object_version(self, name: str) -> int:
        return self._object_versions.get(name.upper(), 0)

    def register_virtual(self, table: VirtualTable) -> VirtualTable:
        """Install a read-only system table.

        Virtual tables never get a version bump after registration: cached
        plans over them stay valid forever (the *scan* re-pulls live data),
        except after an explicit ANALYZE which recompiles on purpose.
        """
        with self._mutex:
            key = table.name.upper()
            if key in self.tables or key in self.views:
                raise CatalogError(f"table or view {table.name} already exists")
            table._catalog = self
            self.virtual_tables[key] = table
            return table

    def is_virtual(self, name: str) -> bool:
        return name.upper() in self.virtual_tables

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        partition: Optional[PartitionSpec] = None,
    ) -> Table:
        with self._mutex:
            key = name.upper()
            if key in self.tables or key in self.views or key in self.virtual_tables:
                raise CatalogError(f"table or view {name} already exists")
            if partition is not None:
                table: Table = ShardedTable(key, columns, self.buffer_pool, partition)
            else:
                table = Table(key, columns, self.buffer_pool)
            table._catalog = self
            self.tables[key] = table
            if isinstance(table, ShardedTable):
                for view in table.shard_views:
                    vkey = view.name.upper()
                    if vkey in self.tables or vkey in self.views or vkey in self.virtual_tables:
                        raise CatalogError(f"table or view {view.name} already exists")
                    view._catalog = self
                    self.tables[vkey] = view
                    self.bump_version(vkey)
            self.bump_version(key)
            return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        with self._mutex:
            key = name.upper()
            if key in self.virtual_tables:
                raise CatalogError(f"{key} is a system table and cannot be dropped")
            table = self.tables.get(key)
            if table is not None and table.is_shard_view:
                raise CatalogError(
                    f"{key} is a shard view; drop its parent table instead"
                )
            table = self.tables.pop(key, None)
            if table is None:
                if if_exists:
                    return
                raise CatalogError(f"no table named {name}")
            if isinstance(table, ShardedTable):
                for view in table.shard_views:
                    self.tables.pop(view.name.upper(), None)
                    self.bump_version(view.name)
            table.heap.truncate()
            self.bump_version(key)

    def detach_scratch(self, name: str) -> Optional[Table]:
        """Remove a scratch table from the name space *without* a version
        bump, keeping the Table object alive for later re-attachment.

        The XNF layer uses this for its worktables: plans compiled against
        the same Table object stay valid across instantiations, while the
        catalog looks clean in between (temp tables are invisible once an
        extraction finishes).
        """
        with self._mutex:
            return self.tables.pop(name.upper(), None)

    def attach_scratch(self, table: Table) -> None:
        """Re-insert a previously detached scratch table, no version bump."""
        with self._mutex:
            key = table.name.upper()
            if key in self.tables or key in self.views or key in self.virtual_tables:
                raise CatalogError(f"table or view {table.name} already exists")
            table._catalog = self
            self.tables[key] = table

    def get_table(self, name: str) -> Table:
        key = name.upper()
        table = self.tables.get(key)
        if table is None:
            table = self.virtual_tables.get(key)
        if table is None:
            raise CatalogError(f"no table named {name}")
        return table

    def has_table(self, name: str) -> bool:
        key = name.upper()
        return key in self.tables or key in self.virtual_tables

    def create_view(self, name: str, sql_text: str, body: Any) -> ViewDefinition:
        with self._mutex:
            key = name.upper()
            if key in self.tables or key in self.views or key in self.virtual_tables:
                raise CatalogError(f"table or view {name} already exists")
            view = ViewDefinition(key, sql_text, body)
            self.views[key] = view
            self.bump_version(key)
            return view

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        with self._mutex:
            key = name.upper()
            if key not in self.views:
                if if_exists:
                    return
                raise CatalogError(f"no view named {name}")
            del self.views[key]
            self.bump_version(key)

    def get_view(self, name: str) -> Optional[ViewDefinition]:
        return self.views.get(name.upper())
