"""MVCC snapshot isolation: snapshots, a side version store, and vacuum.

The heap always holds the *latest* version of every row; MVCC keeps the
history next to it in a side store keyed by ``(table, RID)``.  This
leaves the physical write path — pages, WAL, ARIES undo/redo, indexes,
FK checks — completely untouched: a transaction mutates the heap exactly
as before, and the version store remembers the committed image it
displaced so concurrent snapshots can still see it.

Visibility model
----------------

* Commit timestamps are a monotonic integer clock starting at 1; a
  snapshot with ``read_ts = S`` sees every version committed at or
  before ``S``, plus its own transaction's uncommitted writes.
* Rows with no version-store entry are *frozen*: their begin timestamp
  is :data:`FROZEN_TS` (0), visible to every snapshot.  The vast
  majority of rows are frozen at any moment, which keeps the MVCC read
  path cheap: scans resolve heap rows against the store in batches
  (one lock acquisition per chunk), and a missing entry passes the heap
  row through unchanged.

Reader/writer ordering makes the lock-free read path sound.  Writers
register the version note *before* the physical heap mutation for
updates and deletes, and inside the store's critical section together
with the heap insert for inserts (:meth:`VersionStore.insert_with_note`).
Readers do the opposite — read the heap row first, then consult the
store.  A reader that finds no entry therefore has proof the heap row
was unmodified at the moment it read it; a reader that raced a writer
finds the entry and resolves to the committed image it displaced.
* A version-store entry tracks the current heap state (``current_row``
  mirrors heap content; ``None`` means the RID is deleted), the commit
  timestamp that produced it, an optional uncommitted ``writer``, the
  committed state that writer displaced (``pending_old``), and a list of
  older committed images ``(begin_ts, end_ts, row_or_None)``.

Conflict policy is first-committer-wins: a write to a row whose current
version committed after the writer's snapshot raises the retryable
:class:`~repro.errors.SerializationError`.  Writer-writer ordering is
still provided by the no-wait table X-locks; readers take no locks at
all in MVCC mode.

Vacuum prunes history images whose end timestamp is at or below the
oldest active snapshot's ``read_ts`` and drops entries that have become
indistinguishable from frozen rows.  All vacuum counters are monotonic.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SerializationError

__all__ = [
    "FROZEN_TS",
    "Snapshot",
    "SnapshotManager",
    "VersionStore",
    "MVCCController",
    "current_snapshot",
    "set_ambient_snapshot",
]

#: begin timestamp of rows that predate all version tracking — visible to
#: every snapshot (the commit clock starts at FROZEN_TS + 1)
FROZEN_TS = 0

# Row images are tuples; ``None`` means "absent" (deleted / never present).
Row = Optional[Tuple[Any, ...]]


class Snapshot:
    """A point-in-time read view.

    Sees every version with ``begin_ts <= read_ts`` plus the uncommitted
    writes of its owning transaction (``owner == 0`` marks an ephemeral
    single-statement snapshot with no transaction, used for autocommit
    reads).
    """

    __slots__ = ("read_ts", "owner", "snap_id")

    def __init__(self, read_ts: int, owner: int, snap_id: int):
        self.read_ts = read_ts
        self.owner = owner
        self.snap_id = snap_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot(read_ts={self.read_ts}, owner={self.owner})"


class SnapshotManager:
    """Issues monotonic commit timestamps and tracks active snapshots.

    ``oldest_active_ts()`` is the vacuum watermark: no active snapshot
    can need a version whose lifetime ended at or before it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clock = FROZEN_TS  # last assigned commit timestamp
        self._snap_ids = 0
        self._active: Dict[int, Snapshot] = {}
        self.snapshots_issued = 0

    def begin(self, owner: int = 0) -> Snapshot:
        """Open a snapshot at the current commit clock."""
        with self._lock:
            self._snap_ids += 1
            self.snapshots_issued += 1
            snap = Snapshot(self._clock, owner, self._snap_ids)
            self._active[snap.snap_id] = snap
            return snap

    def release(self, snap: Optional[Snapshot]) -> None:
        if snap is None:
            return
        with self._lock:
            self._active.pop(snap.snap_id, None)

    def next_commit_ts(self) -> int:
        with self._lock:
            self._clock += 1
            return self._clock

    @property
    def clock(self) -> int:
        with self._lock:
            return self._clock

    def oldest_active_ts(self) -> int:
        """Watermark: smallest read_ts among active snapshots, else the
        current clock (everything committed is then reclaimable history)."""
        with self._lock:
            if self._active:
                return min(s.read_ts for s in self._active.values())
            return self._clock

    def active_snapshots(self) -> List[Snapshot]:
        with self._lock:
            return list(self._active.values())

    def reset(self) -> None:
        """Post-recovery reset: drop all snapshots, keep the clock (so
        timestamps stay monotonic across a crash within one process)."""
        with self._lock:
            self._active.clear()


class _Entry:
    """Version-store entry for one (table, RID).

    ``current_row`` mirrors the heap: it is the latest row image, or
    ``None`` when the RID is (pending- or committed-) deleted.  While a
    transaction's write is uncommitted, ``writer`` names it and
    ``pending_old`` holds the committed ``(begin_ts, row)`` state it
    displaced; ``history`` holds older committed images as
    ``(begin_ts, end_ts, row_or_None)`` intervals, oldest first.
    """

    __slots__ = ("history", "current_begin", "current_row", "writer", "pending_old")

    def __init__(
        self,
        current_begin: int,
        current_row: Row,
        writer: Optional[int] = None,
        pending_old: Optional[Tuple[int, Row]] = None,
    ):
        self.history: List[Tuple[int, int, Row]] = []
        self.current_begin = current_begin
        self.current_row = current_row
        self.writer = writer
        self.pending_old = pending_old


class VersionStore:
    """Side store of superseded row versions, keyed by table then RID.

    Writers call :meth:`note_write` once per heap mutation (1:1 with the
    WAL/undo records appended by the transaction manager) and
    :meth:`pop_note` once per undo-entry rollback, so the store unwinds
    in exact lockstep with statement/transaction rollback.  Commit stamps
    all of a transaction's displaced images with one commit timestamp.
    """

    def __init__(self, snapshots: SnapshotManager):
        self._lock = threading.RLock()
        self.snapshots = snapshots
        self._tables: Dict[str, Dict[Any, _Entry]] = {}
        # per-txn LIFO of (table, rid, saved_state_or_None); None means the
        # entry did not exist before this write
        self._notes: Dict[int, List[Tuple[str, Any, Optional[tuple]]]] = {}
        # monotonic counters
        self.vacuum_runs = 0
        self.versions_pruned = 0
        self.entries_dropped = 0
        self.serialization_conflicts = 0

    # -- write side ----------------------------------------------------------

    def check_write(self, table: str, rid: Any, snap: Snapshot) -> None:
        """First-committer-wins: reject writes to rows whose current
        version committed after *snap* was taken."""
        with self._lock:
            entries = self._tables.get(table)
            entry = entries.get(rid) if entries else None
            if entry is None:
                return
            if entry.writer is not None:
                if entry.writer == snap.owner:
                    return
                # Another uncommitted writer holds the row.  Table X-locks
                # normally prevent this; treat it as a conflict if reached.
                self.serialization_conflicts += 1
                raise SerializationError(
                    f"row {table}:{rid} is being modified by txn {entry.writer}"
                )
            if entry.current_begin > snap.read_ts:
                self.serialization_conflicts += 1
                raise SerializationError(
                    f"row {table}:{rid} was modified by a transaction that "
                    f"committed after this snapshot (version {entry.current_begin} "
                    f"> snapshot {snap.read_ts}); retry the transaction"
                )

    def note_write(self, txn_id: int, table: str, rid: Any, before: Row, after: Row) -> None:
        """Record a heap mutation: *before* is the heap image the write
        displaced (None for inserts), *after* the new heap state (None
        for deletes).  For updates and deletes this must be called
        *before* the physical change (readers read the heap first and
        the store second, so the note must already be there when the
        mutated row becomes observable); inserts go through
        :meth:`insert_with_note` instead."""
        with self._lock:
            entries = self._tables.setdefault(table, {})
            notes = self._notes.setdefault(txn_id, [])
            entry = entries.get(rid)
            if entry is None:
                notes.append((table, rid, None))
                entries[rid] = _Entry(
                    current_begin=FROZEN_TS,
                    current_row=after,
                    writer=txn_id,
                    pending_old=(FROZEN_TS, before),
                )
                return
            notes.append(
                (table, rid,
                 (entry.current_begin, entry.current_row, entry.writer, entry.pending_old))
            )
            if entry.writer is None:
                # first touch by this transaction: remember the committed
                # state being displaced
                entry.pending_old = (entry.current_begin, entry.current_row)
                entry.writer = txn_id
            entry.current_row = after

    def insert_with_note(self, txn_id: int, table, row: Tuple[Any, ...]):
        """Heap insert and version note as one critical section.

        An insert's RID is unknown until the heap assigns it, so the note
        cannot precede the physical write the way update/delete notes do.
        Holding the store lock across both closes the gap: a snapshot scan
        that observed the new heap row cannot look the RID up in the store
        until this section ends, by which time the entry that hides the
        uncommitted row is in place.  Returns the new RID; if the insert
        itself fails (integrity error) no note is taken."""
        with self._lock:
            rid = table.insert(row)
            self.note_write(txn_id, table.name, rid, None, row)
            return rid

    def pop_note(self, txn_id: int) -> None:
        """Undo hook: revert the most recent :meth:`note_write` of *txn_id*
        (called once per undo entry rolled back, newest first)."""
        with self._lock:
            notes = self._notes.get(txn_id)
            if not notes:
                return
            table, rid, saved = notes.pop()
            entries = self._tables.get(table)
            if entries is None:
                return
            if saved is None:
                entries.pop(rid, None)
                if not entries:
                    self._tables.pop(table, None)
            else:
                entry = entries.get(rid)
                if entry is not None:
                    (entry.current_begin, entry.current_row,
                     entry.writer, entry.pending_old) = saved
            if not notes:
                self._notes.pop(txn_id, None)

    def commit_txn(self, txn_id: int) -> Optional[int]:
        """Stamp the transaction's writes with a fresh commit timestamp
        and move each displaced committed image into history.  Returns the
        commit timestamp, or None for read-only transactions."""
        with self._lock:
            notes = self._notes.pop(txn_id, None)
            if not notes:
                return None
            commit_ts = self.snapshots.next_commit_ts()
            finished = set()
            for table, rid, _saved in notes:
                key = (table, rid)
                if key in finished:
                    continue
                finished.add(key)
                entries = self._tables.get(table)
                entry = entries.get(rid) if entries else None
                if entry is None or entry.writer != txn_id:
                    continue
                old_begin, old_row = entry.pending_old or (FROZEN_TS, None)
                # "absent since forever" images carry no information: any
                # snapshot too old to see the new version resolves to
                # absent by falling off the end of history anyway.
                if not (old_row is None and old_begin == FROZEN_TS):
                    entry.history.append((old_begin, commit_ts, old_row))
                entry.current_begin = commit_ts
                entry.writer = None
                entry.pending_old = None
            return commit_ts

    def abort_txn(self, txn_id: int) -> None:
        """Discard any remaining notes of an aborting transaction,
        restoring saved entry states newest-first.  Usually a no-op: the
        ARIES undo pass already popped every note via :meth:`pop_note`."""
        with self._lock:
            while self._notes.get(txn_id):
                self.pop_note(txn_id)
            self._notes.pop(txn_id, None)

    # -- read side -----------------------------------------------------------

    def resolve(self, table: str, rid: Any, heap_row: Row, snap: Snapshot) -> Row:
        """The row image of (table, rid) visible to *snap*; *heap_row* is
        the latest heap content (None if absent from the heap)."""
        # Lock-free empty check: one dict read is atomic under the GIL, and
        # writers insert their entry (inside the lock) before any heap
        # mutation, so a caller that read the heap row first cannot miss an
        # entry covering a mutation it observed.  Only a non-empty table
        # pays for the lock.
        if not self._tables.get(table):
            return heap_row
        with self._lock:
            entries = self._tables.get(table)
            entry = entries.get(rid) if entries else None
            if entry is None:
                return heap_row
            return self._visible(entry, snap)

    def _visible(self, entry: _Entry, snap: Snapshot) -> Row:
        if entry.writer is not None:
            if entry.writer == snap.owner:
                return entry.current_row  # own uncommitted writes
            base_begin, base_row = entry.pending_old or (FROZEN_TS, None)
            if base_begin <= snap.read_ts:
                return base_row
        elif entry.current_begin <= snap.read_ts:
            return entry.current_row
        for begin_ts, end_ts, row in reversed(entry.history):
            if begin_ts <= snap.read_ts < end_ts:
                return row
        return None

    def resolve_batch(
        self, table: str, pairs: List[Tuple[Any, Tuple[Any, ...]]], snap: Snapshot
    ) -> List[Tuple[Any, Tuple[Any, ...]]]:
        """Resolve a chunk of already-read ``(rid, heap_row)`` pairs in one
        lock acquisition, dropping rows invisible to *snap*.  Callers must
        have read each heap row *before* this call — that ordering is what
        makes a missing entry proof of an unmodified row."""
        if not self._tables.get(table):
            return pairs  # lock-free empty check (see resolve)
        with self._lock:
            entries = self._tables.get(table)
            if not entries:
                return pairs
            out = []
            for rid, heap_row in pairs:
                entry = entries.get(rid)
                if entry is None:
                    out.append((rid, heap_row))
                    continue
                image = self._visible(entry, snap)
                if image is not None:
                    out.append((rid, image))
            return out

    def dirty(self, table: str) -> bool:
        """True when any row of *table* currently has a version entry.

        Scans use this per page *after* copying the page's slots: writers
        create their entry before touching the heap, so a clean verdict
        taken after the read proves the rows read were unmodified baseline
        images — no per-row resolution needed for that page.  Deliberately
        lock-free (see :meth:`resolve`): the single dict read is atomic
        under the GIL and entry creation precedes every heap mutation.
        """
        return bool(self._tables.get(table))

    def candidates(
        self, table: str, snap: Snapshot, seen: set, seen_pages: Optional[set] = None
    ) -> List[Tuple[Any, Row]]:
        """Visible images of versioned rows a physical scan may have
        missed: committed/pending deletes absent from the heap, and (for
        index scans) rows whose indexed key changed after the snapshot.
        ``seen`` holds RIDs the caller already yielded; ``seen_pages``
        holds page ids scanned on the clean fast path — every live row of
        such a page was yielded while the table verifiably had no entries,
        so any entry pointing there was created afterwards and its visible
        image (the pre-write row) has already been emitted."""
        if not self._tables.get(table):
            # Lock-free empty check (see resolve): an entry appearing
            # concurrently covers a write that started after the caller's
            # physical scan, whose visible image the scan already yielded.
            return []
        with self._lock:
            entries = self._tables.get(table)
            if not entries:
                return []
            out = []
            for rid, entry in entries.items():
                if rid in seen:
                    continue
                if seen_pages is not None and rid.page_id in seen_pages:
                    continue
                image = self._visible(entry, snap)
                if image is not None:
                    out.append((rid, image))
            return out

    # -- maintenance ---------------------------------------------------------

    def vacuum(self) -> Dict[str, int]:
        """Reclaim versions no active snapshot can see.  Returns the
        watermark used and how much was pruned; counters are monotonic."""
        with self._lock:
            horizon = self.snapshots.oldest_active_ts()
            pruned = dropped = 0
            for table in list(self._tables):
                entries = self._tables[table]
                for rid in list(entries):
                    entry = entries[rid]
                    if entry.history:
                        kept = [v for v in entry.history if v[1] > horizon]
                        pruned += len(entry.history) - len(kept)
                        entry.history = kept
                    if (entry.writer is None and not entry.history
                            and entry.current_begin <= horizon):
                        # every live snapshot sees the heap state: the
                        # entry is equivalent to a frozen row (or, for
                        # deletes, to plain heap absence)
                        del entries[rid]
                        dropped += 1
                if not entries:
                    del self._tables[table]
            self.vacuum_runs += 1
            self.versions_pruned += pruned
            self.entries_dropped += dropped
            return {"horizon": horizon, "pruned": pruned, "dropped": dropped}

    def reset(self) -> None:
        """Post-recovery reset: only committed data survives a crash, so
        every surviving row is consistent as a frozen version."""
        with self._lock:
            self._tables.clear()
            self._notes.clear()

    def metrics(self) -> Dict[str, int]:
        with self._lock:
            chain_lens = [
                len(entry.history)
                for entries in self._tables.values()
                for entry in entries.values()
            ]
            return {
                "versioned_rows": len(chain_lens),
                "version_images": sum(chain_lens),
                "max_chain_len": max(chain_lens, default=0),
                "vacuum_runs": self.vacuum_runs,
                "versions_pruned": self.versions_pruned,
                "entries_dropped": self.entries_dropped,
                "serialization_conflicts": self.serialization_conflicts,
            }


# -- ambient snapshot ---------------------------------------------------------
#
# Compiled plans and operators predate MVCC and take no snapshot parameter;
# rather than threading one through every cached closure, the engine pushes
# the statement's snapshot into a thread-local that Table.scan()/fetch()
# consult.  Thread-local by construction: each session thread reads under
# its own snapshot.

_AMBIENT = threading.local()


def current_snapshot() -> Optional[Snapshot]:
    return getattr(_AMBIENT, "snapshot", None)


def set_ambient_snapshot(snap: Optional[Snapshot]) -> Optional[Snapshot]:
    """Install *snap* as this thread's ambient snapshot; returns the
    previous one so callers can restore it (stack discipline)."""
    prev = getattr(_AMBIENT, "snapshot", None)
    _AMBIENT.snapshot = snap
    return prev


class MVCCController:
    """Facade owned by :class:`Database` when MVCC mode is enabled.

    Bundles the snapshot manager and version store, plus an autovacuum
    trigger: after a commit pushes the number of versioned rows past
    ``autovacuum_threshold``, the committing thread runs a vacuum pass
    inline (bounded, lock-protected, and cheap — the store is in-memory).
    """

    def __init__(self, autovacuum_threshold: int = 4096):
        self.snapshots = SnapshotManager()
        self.store = VersionStore(self.snapshots)
        self.autovacuum_threshold = autovacuum_threshold
        self.autovacuum_runs = 0
        self.idle_vacuums = 0

    def release(self, snap: Optional[Snapshot]) -> None:
        """Retire *snap* and, when it was the last active snapshot, sweep
        the version store.

        With no snapshot open the vacuum horizon is the whole commit
        clock, so every committed entry collapses back to a frozen heap
        row.  Without this, a lightly-written table would carry its
        insert-era entries forever (the autovacuum threshold only reacts
        to bulk) and every scan of it would pay for per-row resolution
        instead of the clean-page fast path.  Each entry is dropped the
        first time a sweep sees it, so the cost is amortised O(1) per
        write.  The peeks below are deliberately racy: vacuum recomputes
        its horizon under the proper locks, so a snapshot that begins
        meanwhile is respected — the worst case is a skipped or redundant
        sweep, never a wrong one.
        """
        self.snapshots.release(snap)
        if (
            self.autovacuum_threshold > 0
            and self.store._tables
            and not self.snapshots._active
        ):
            self.idle_vacuums += 1
            self.store.vacuum()

    @staticmethod
    def current_snapshot() -> Optional[Snapshot]:
        """This thread's ambient snapshot (the catalog calls this through
        the controller so it never has to import the txn layer)."""
        return current_snapshot()

    def maybe_autovacuum(self) -> None:
        if self.autovacuum_threshold <= 0:
            return
        # racy read is fine: worst case two threads both vacuum
        total = sum(len(e) for e in self.store._tables.values())
        if total > self.autovacuum_threshold:
            self.autovacuum_runs += 1
            self.store.vacuum()

    def reset(self) -> None:
        """Crash-recovery hook: after ARIES restart only committed data
        remains in the heap, so the version store restarts empty (all
        rows frozen) while the commit clock keeps advancing."""
        self.store.reset()
        self.snapshots.reset()

    def metrics(self) -> Dict[str, int]:
        out = self.store.metrics()
        out.update(
            {
                "commit_clock": self.snapshots.clock,
                "active_snapshots": len(self.snapshots.active_snapshots()),
                "oldest_read_ts": self.snapshots.oldest_active_ts(),
                "snapshots_issued": self.snapshots.snapshots_issued,
                "autovacuum_runs": self.autovacuum_runs,
                "idle_vacuums": self.idle_vacuums,
            }
        )
        return out
