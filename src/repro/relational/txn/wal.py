"""Write-ahead log with logical records.

Records carry full before/after row images, so the log alone is sufficient
to redo committed work into an empty database (see
:func:`repro.relational.txn.manager.TransactionManager.recover_into`) —
the property the recovery tests exercise with a simulated crash.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

#: record kinds
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ABORT = "ABORT"
INSERT = "INSERT"
DELETE = "DELETE"
UPDATE = "UPDATE"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn_id: int
    kind: str
    table: Optional[str] = None
    before: Optional[Tuple[Any, ...]] = None
    after: Optional[Tuple[Any, ...]] = None


class WriteAheadLog:
    """Append-only log; ``records`` simulates stable storage."""

    def __init__(self):
        self.records: List[LogRecord] = []
        self._lsn = itertools.count(1)

    def append(
        self,
        txn_id: int,
        kind: str,
        table: Optional[str] = None,
        before: Optional[Tuple[Any, ...]] = None,
        after: Optional[Tuple[Any, ...]] = None,
    ) -> LogRecord:
        record = LogRecord(next(self._lsn), txn_id, kind, table, before, after)
        self.records.append(record)
        return record

    def committed_txns(self) -> set:
        return {r.txn_id for r in self.records if r.kind == COMMIT}

    def __len__(self) -> int:
        return len(self.records)
