"""Write-ahead log with CRC'd logical records and a stable-storage boundary.

Records carry full before/after row images *and* the physical RID they were
applied to, so the log supports both logical log-shipping replay and the
page-LSN-based ARIES redo/undo of
:mod:`repro.relational.txn.recovery`.

Durability model
----------------
``append`` writes into a volatile tail buffer; :meth:`flush` moves the tail
to the stable region (``stable_records``), which is all a crash preserves.
Each record stores a CRC32 over its payload, verified when recovery reads
the stable log — a torn flush (an installed
:class:`~repro.relational.storage.faults.FaultInjector` can corrupt the
tail of a flushed batch) truncates the log at the first bad record.
:meth:`crash` simulates the power cut: the tail is discarded and the LSN
clock rewinds to the stable high-water mark.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.storage.faults import FaultInjector

#: record kinds
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ABORT = "ABORT"
INSERT = "INSERT"
DELETE = "DELETE"
UPDATE = "UPDATE"
#: compensation record: the redo-only inverse of an undone action
CLR = "CLR"
#: fuzzy checkpoint brackets
CKPT_BEGIN = "CKPT_BEGIN"
CKPT_END = "CKPT_END"

#: physical address of a logged row, as a plain (page_id, slot) pair
PageAddress = Tuple[int, int]


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn_id: int
    kind: str
    table: Optional[str] = None
    before: Optional[Tuple[Any, ...]] = None
    after: Optional[Tuple[Any, ...]] = None
    #: physical address the change was applied to (data records and CLRs)
    rid: Optional[PageAddress] = None
    #: for CLR records: the operation the compensation performs
    comp_kind: Optional[str] = None
    #: for CLR records: the LSN of the data record this compensates
    undo_lsn: Optional[int] = None
    #: checkpoint payload (active transactions, begin-LSN back pointer)
    extra: Optional[Dict[str, Any]] = None
    #: CRC32 over the payload; 0 means "not yet sealed"
    crc: int = 0

    def payload_crc(self) -> int:
        image = repr(
            (
                self.lsn,
                self.txn_id,
                self.kind,
                self.table,
                self.before,
                self.after,
                self.rid,
                self.comp_kind,
                self.undo_lsn,
                self.extra,
            )
        )
        return zlib.crc32(image.encode("utf-8"))

    def sealed(self) -> "LogRecord":
        return LogRecord(
            self.lsn,
            self.txn_id,
            self.kind,
            self.table,
            self.before,
            self.after,
            self.rid,
            self.comp_kind,
            self.undo_lsn,
            self.extra,
            self.payload_crc(),
        )

    def verify(self) -> bool:
        return self.crc == self.payload_crc()


class WriteAheadLog:
    """Append-only log split into a stable region and a volatile tail."""

    def __init__(self):
        # Serializes appenders/flushers: LSN allocation and the tail list
        # must move together, and a flush must see a consistent tail.
        # Acquired after the buffer-pool latch when a page write forces a
        # WAL flush (lock order: buffer -> wal, never the reverse).
        self._mutex = threading.RLock()
        self._stable: List[LogRecord] = []
        self._tail: List[LogRecord] = []
        self._lsn = itertools.count(1)
        self.fault_injector: Optional["FaultInjector"] = None
        self.flushes = 0
        self.dropped_flushes = 0
        self.torn_flushes = 0
        self.torn_repairs = 0
        self.records_flushed = 0
        self.bytes_flushed = 0

    # -- append / flush ------------------------------------------------------

    def append(
        self,
        txn_id: int,
        kind: str,
        table: Optional[str] = None,
        before: Optional[Tuple[Any, ...]] = None,
        after: Optional[Tuple[Any, ...]] = None,
        rid: Optional[PageAddress] = None,
        comp_kind: Optional[str] = None,
        undo_lsn: Optional[int] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> LogRecord:
        with self._mutex:
            record = LogRecord(
                next(self._lsn), txn_id, kind, table, before, after,
                rid, comp_kind, undo_lsn, extra,
            ).sealed()
            self._tail.append(record)
            return record

    def flush(self) -> int:
        """Force the tail to stable storage; returns the stable LSN.

        A dropped flush (fault injection) persists nothing but keeps the
        tail buffered, so a later flush can still succeed — callers that
        need durability must check the returned stable LSN.  A torn flush
        persists the batch but only partially writes its final record: that
        record lands with a broken CRC (recovery truncates the log there if
        the machine dies now) and is NOT reported stable — it stays in the
        tail, and the next flush overwrites the torn region, exactly like a
        log writer re-writing its last partially-filled block.
        """
        with self._mutex:
            if not self._tail:
                return self.stable_lsn
            self.flushes += 1
            disposition = "ok"
            if self.fault_injector is not None:
                disposition = self.fault_injector.on_wal_flush(len(self._tail))
            if disposition == "drop":
                self.dropped_flushes += 1
                return self.stable_lsn  # dropped: tail stays volatile
            self._repair_torn_end()
            if disposition == "torn":
                self.torn_flushes += 1
                batch = list(self._tail)
                last = batch[-1]
                self._stable.extend(batch[:-1])
                self.records_flushed += len(batch) - 1
                self.bytes_flushed += sum(
                    len(repr(record)) for record in batch[:-1]
                )
                self._stable.append(replace(last, crc=last.crc ^ 0xFFFFFFFF))
                # The final record never fully persisted: keep it buffered
                # so a retry can complete the flush.
                self._tail = [last]
                return self.stable_lsn
            self.records_flushed += len(self._tail)
            self.bytes_flushed += sum(
                len(repr(record)) for record in self._tail
            )
            self._stable.extend(self._tail)
            self._tail.clear()
            return self.stable_lsn

    def _repair_torn_end(self) -> None:
        """Drop a torn trailing record before persisting over its region.

        Only the most recent record can ever be torn (every flush repairs
        first), so this is O(1).
        """
        if self._stable and not self._stable[-1].verify():
            self._stable.pop()
            self.torn_repairs += 1

    def retract_tail_record(self, lsn: int) -> bool:
        """Remove a not-yet-stable record (commit backs out of a failed
        flush so an ABORT can follow without contradicting the log)."""
        with self._mutex:
            for pos, record in enumerate(self._tail):
                if record.lsn == lsn:
                    del self._tail[pos]
                    return True
            return False

    # -- crash simulation ----------------------------------------------------

    def crash(self) -> int:
        """Drop the volatile tail (power cut); returns records lost."""
        with self._mutex:
            lost = len(self._tail)
            self._tail.clear()
            self._lsn = itertools.count(self.stable_lsn + 1)
            return lost

    # -- read side -----------------------------------------------------------

    @property
    def stable_lsn(self) -> int:
        """LSN of the last *verified* stable record.

        A torn trailing record does not count: recovery would truncate it,
        so reporting it stable would let a commit be acknowledged and then
        lost.
        """
        if not self._stable:
            return 0
        if not self._stable[-1].verify():
            return self._stable[-2].lsn if len(self._stable) > 1 else 0
        return self._stable[-1].lsn

    def stable_records(self) -> List[LogRecord]:
        """CRC-verified stable prefix: truncates at the first torn record."""
        good: List[LogRecord] = []
        for record in self._stable:
            if not record.verify():
                break
            good.append(record)
        return good

    @property
    def records(self) -> List[LogRecord]:
        """Runtime logical view: stable region plus the volatile tail."""
        return self._stable + self._tail

    def metrics(self) -> Dict[str, int]:
        """Counter snapshot for ``Database.metrics_snapshot()``."""
        with self._mutex:
            return {
                "flushes": self.flushes,
                "dropped_flushes": self.dropped_flushes,
                "torn_flushes": self.torn_flushes,
                "torn_repairs": self.torn_repairs,
                "records_flushed": self.records_flushed,
                "bytes_flushed": self.bytes_flushed,
                "stable_lsn": self.stable_lsn,
                "stable_records": len(self._stable),
                "tail_records": len(self._tail),
            }

    def committed_txns(self) -> set:
        return {r.txn_id for r in self.records if r.kind == COMMIT}

    def __len__(self) -> int:
        return len(self._stable) + len(self._tail)
