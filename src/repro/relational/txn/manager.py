"""Transaction manager: undo lists, WAL integration, checkpoints, recovery.

Durability protocol (ARIES-flavoured):

* every DML change is logged with its physical RID and stamps the page LSN
  (:meth:`Table.stamp_lsn`), giving the redo pass its idempotence test;
* **commit** forces the WAL: the transaction's data records must be stable
  before the COMMIT record is appended, and the COMMIT record itself must
  be stable before the commit is acknowledged.  If the final flush keeps
  failing (a fault injector can drop flushes), the COMMIT record is
  retracted from the volatile tail and a transient
  :class:`~repro.errors.IOFaultError` is raised — the transaction stays
  active and undoable, so an acknowledged commit is always durable;
* **rollback** (full or statement-level) applies the undo list in reverse
  and logs a compensation (CLR) record per undone action, so that
  crash-recovery's "repeat history" redo pass replays the undo too;
* **checkpoints** are fuzzy: a CKPT_BEGIN record (with the active
  transaction table), a forced WAL flush, a buffer-pool flush of all dirty
  pages (each write subject to the WAL-ahead hook), then CKPT_END carrying
  the begin-LSN — recovery's redo starts at the last *complete*
  checkpoint's begin record.

Crash recovery itself lives in :mod:`repro.relational.txn.recovery`.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, IOFaultError, TransactionError
from repro.relational.catalog import Table
from repro.relational.storage.heap import RID
from repro.relational.txn import wal as wal_kinds
from repro.relational.txn.locks import LockManager
from repro.relational.txn.wal import LogRecord, WriteAheadLog


class IsolationLevel(enum.Enum):
    """The two degrees of isolation the paper names (section 1)."""

    REPEATABLE_READ = "repeatable read"
    CURSOR_STABILITY = "cursor stability"


@dataclass
class _UndoEntry:
    kind: str  # INSERT / DELETE / UPDATE
    table: Table
    rid: Optional[RID]
    before: Optional[Tuple[Any, ...]] = None
    after: Optional[Tuple[Any, ...]] = None
    #: LSN of the WAL record this entry mirrors (becomes the CLR's undo_lsn)
    lsn: int = 0


@dataclass
class Transaction:
    txn_id: int
    isolation: IsolationLevel
    undo: List[_UndoEntry] = field(default_factory=list)
    active: bool = True
    #: LSN of this transaction's most recent log record
    last_lsn: int = 0
    #: True for the per-statement transaction the engine wraps around
    #: autocommit DML (statement == transaction)
    implicit: bool = False
    #: MVCC read snapshot (None when MVCC mode is off)
    snapshot: Optional[Any] = None


class TransactionManager:
    """Coordinates transactions, the lock manager, and the WAL."""

    #: bounded retries for commit-critical WAL flushes (dropped-flush faults)
    FLUSH_ATTEMPTS = 5

    def __init__(
        self,
        wal: Optional[WriteAheadLog] = None,
        max_concurrent_txns: Optional[int] = None,
    ):
        self.locks = LockManager()
        self.wal = wal if wal is not None else WriteAheadLog()
        self._ids = itertools.count(1)
        self._active: Dict[int, Transaction] = {}
        # guards _active / the id clock / admission across session threads
        self._mutex = threading.RLock()
        #: MVCCController when the owning Database runs in MVCC mode
        self.mvcc: Optional[Any] = None
        #: admission-control ceiling on concurrently active transactions
        #: (None = unlimited); rejections raise the retryable AdmissionError
        self.max_concurrent_txns = max_concurrent_txns
        self.begun = 0
        self.commits = 0
        self.aborts = 0
        #: transactions rejected by admission control
        self.admission_rejects = 0
        #: commit attempts bounced because the WAL could not be forced
        #: (the transaction stays active — the engine may retry)
        self.commit_flush_failures = 0
        #: statement-level rollbacks (partial undo, transaction stays open)
        self.statement_rollbacks = 0

    # -- lifecycle ------------------------------------------------------------

    def begin(
        self,
        isolation: IsolationLevel = IsolationLevel.REPEATABLE_READ,
        implicit: bool = False,
    ) -> Transaction:
        with self._mutex:
            ceiling = self.max_concurrent_txns
            if ceiling is not None and len(self._active) >= ceiling:
                self.admission_rejects += 1
                raise AdmissionError(
                    f"admission control: {len(self._active)} transactions "
                    f"active (max {ceiling}); retry after backoff"
                )
            txn = Transaction(next(self._ids), isolation, implicit=implicit)
            self._active[txn.txn_id] = txn
            self.begun += 1
        record = self.wal.append(txn.txn_id, wal_kinds.BEGIN)
        txn.last_lsn = record.lsn
        if self.mvcc is not None:
            txn.snapshot = self.mvcc.snapshots.begin(txn.txn_id)
        return txn

    def commit(self, txn: Transaction) -> None:
        """Force-commit *txn*; raises (leaving it active) if the WAL cannot
        be made stable — acknowledged commits are always durable."""
        self._check_active(txn)
        # WAL rule first: the transaction's own records must be stable
        # before the commit point exists at all.
        if not self._flush_upto(txn.last_lsn):
            self.commit_flush_failures += 1
            raise IOFaultError(
                f"commit of txn {txn.txn_id}: WAL flush failed before "
                "commit point; transaction still active"
            )
        record = self.wal.append(txn.txn_id, wal_kinds.COMMIT)
        if not self._flush_upto(record.lsn):
            # The COMMIT never reached stable storage; retract it so a
            # subsequent rollback/ABORT does not contradict the log.
            self.wal.retract_tail_record(record.lsn)
            self.commit_flush_failures += 1
            raise IOFaultError(
                f"commit of txn {txn.txn_id}: COMMIT record could not be "
                "made stable; transaction still active"
            )
        self.commits += 1
        txn.active = False
        txn.undo.clear()
        if self.mvcc is not None:
            # The commit point is durable; stamp the displaced versions
            # with one commit timestamp and retire the snapshot.
            self.mvcc.store.commit_txn(txn.txn_id)
            self.mvcc.release(txn.snapshot)
            txn.snapshot = None
        with self._mutex:
            self._active.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)
        if self.mvcc is not None:
            self.mvcc.maybe_autovacuum()

    def rollback(self, txn: Transaction) -> None:
        self._check_active(txn)
        self._undo_to_mark(txn, 0)
        self.wal.append(txn.txn_id, wal_kinds.ABORT)
        self.aborts += 1
        txn.active = False
        txn.undo.clear()
        if self.mvcc is not None:
            # the undo pass popped the version notes in lockstep; this is
            # defensive cleanup plus snapshot retirement
            self.mvcc.store.abort_txn(txn.txn_id)
            self.mvcc.release(txn.snapshot)
            txn.snapshot = None
        with self._mutex:
            self._active.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)

    def rollback_statement(self, txn: Transaction, mark: int) -> int:
        """Statement-level atomicity: undo (and CLR-log) every action the
        current statement applied, leaving the transaction active.

        *mark* is ``len(txn.undo)`` from before the statement started.
        Returns the number of actions undone.
        """
        self._check_active(txn)
        self.statement_rollbacks += 1
        return self._undo_to_mark(txn, mark)

    def _undo_to_mark(self, txn: Transaction, mark: int) -> int:
        undone = 0
        while len(txn.undo) > mark:
            entry = txn.undo.pop()
            if entry.kind == wal_kinds.INSERT:
                entry.table.undo_insert(entry.rid)  # type: ignore[arg-type]
                clr = self.wal.append(
                    txn.txn_id,
                    wal_kinds.CLR,
                    entry.table.name,
                    before=entry.after,
                    rid=(entry.rid.page_id, entry.rid.slot),  # type: ignore[union-attr]
                    comp_kind=wal_kinds.DELETE,
                    undo_lsn=entry.lsn,
                )
                entry.table.stamp_lsn(entry.rid, clr.lsn)  # type: ignore[arg-type]
            elif entry.kind == wal_kinds.DELETE:
                new_rid = entry.table.undo_delete(entry.before)  # type: ignore[arg-type]
                clr = self.wal.append(
                    txn.txn_id,
                    wal_kinds.CLR,
                    entry.table.name,
                    after=entry.before,
                    rid=(new_rid.page_id, new_rid.slot),
                    comp_kind=wal_kinds.INSERT,
                    undo_lsn=entry.lsn,
                )
                entry.table.stamp_lsn(new_rid, clr.lsn)
            elif entry.kind == wal_kinds.UPDATE:
                entry.table.undo_update(entry.rid, entry.before)  # type: ignore[arg-type]
                clr = self.wal.append(
                    txn.txn_id,
                    wal_kinds.CLR,
                    entry.table.name,
                    before=entry.after,
                    after=entry.before,
                    rid=(entry.rid.page_id, entry.rid.slot),  # type: ignore[union-attr]
                    comp_kind=wal_kinds.UPDATE,
                    undo_lsn=entry.lsn,
                )
                entry.table.stamp_lsn(entry.rid, clr.lsn)  # type: ignore[arg-type]
            txn.last_lsn = clr.lsn
            if self.mvcc is not None:
                # version notes are 1:1 with undo entries; unwind in lockstep
                self.mvcc.store.pop_note(txn.txn_id)
            undone += 1
        return undone

    def _check_active(self, txn: Transaction) -> None:
        if not txn.active:
            raise TransactionError(f"transaction {txn.txn_id} is not active")

    def _flush_upto(self, lsn: int) -> bool:
        for _ in range(self.FLUSH_ATTEMPTS):
            if self.wal.flush() >= lsn:
                return True
        return False

    # -- change recording (called by the engine's DML paths) ------------------

    def record_insert(
        self, txn: Transaction, table: Table, rid: RID, row
    ) -> LogRecord:
        record = self.wal.append(
            txn.txn_id,
            wal_kinds.INSERT,
            table.name,
            after=row,
            rid=(rid.page_id, rid.slot),
        )
        txn.undo.append(
            _UndoEntry(wal_kinds.INSERT, table, rid, after=row, lsn=record.lsn)
        )
        txn.last_lsn = record.lsn
        table.stamp_lsn(rid, record.lsn)
        return record

    def record_delete(
        self, txn: Transaction, table: Table, rid: RID, row
    ) -> LogRecord:
        record = self.wal.append(
            txn.txn_id,
            wal_kinds.DELETE,
            table.name,
            before=row,
            rid=(rid.page_id, rid.slot),
        )
        txn.undo.append(
            _UndoEntry(wal_kinds.DELETE, table, rid, before=row, lsn=record.lsn)
        )
        txn.last_lsn = record.lsn
        table.stamp_lsn(rid, record.lsn)
        return record

    def record_update(
        self, txn: Transaction, table: Table, rid: RID, before, after
    ) -> LogRecord:
        record = self.wal.append(
            txn.txn_id,
            wal_kinds.UPDATE,
            table.name,
            before=before,
            after=after,
            rid=(rid.page_id, rid.slot),
        )
        txn.undo.append(
            _UndoEntry(
                wal_kinds.UPDATE, table, rid, before=before, after=after,
                lsn=record.lsn,
            )
        )
        txn.last_lsn = record.lsn
        table.stamp_lsn(rid, record.lsn)
        return record

    def metrics(self) -> Dict[str, int]:
        """Counter snapshot for ``Database.metrics_snapshot()``."""
        return {
            "begun": self.begun,
            "commits": self.commits,
            "aborts": self.aborts,
            "commit_flush_failures": self.commit_flush_failures,
            "statement_rollbacks": self.statement_rollbacks,
            "admission_rejects": self.admission_rejects,
            "max_concurrent_txns": self.max_concurrent_txns,
            "active": len(self._active),
        }

    # -- checkpoints ----------------------------------------------------------

    def checkpoint(self, buffer_pool) -> int:
        """Take a fuzzy checkpoint; returns the CKPT_BEGIN LSN.

        Transactions may be in flight; their in-doubt changes reach disk
        (steal), which is fine because their undo information is forced
        stable first.  An incomplete checkpoint (crash or I/O error before
        CKPT_END is stable) is simply ignored by recovery.
        """
        active = sorted(self._active)
        begin = self.wal.append(0, wal_kinds.CKPT_BEGIN, extra={"active": active})
        if not self._flush_upto(begin.lsn):
            raise IOFaultError("checkpoint: WAL flush failed at begin")
        buffer_pool.flush_all()
        end = self.wal.append(
            0,
            wal_kinds.CKPT_END,
            extra={"begin_lsn": begin.lsn, "active": active},
        )
        if not self._flush_upto(end.lsn):
            raise IOFaultError("checkpoint: WAL flush failed at end")
        return begin.lsn

    # -- recovery --------------------------------------------------------------

    def resume_after(self, max_txn_id: int) -> None:
        """Restart the id clock past every transaction the log has seen."""
        with self._mutex:
            self._ids = itertools.count(max_txn_id + 1)
            self._active.clear()
            self.locks = LockManager()
        if self.mvcc is not None:
            self.mvcc.reset()

    def recover(self, database) -> "RecoveryStats":  # noqa: F821
        """Run ARIES-style crash recovery over *database* (see
        :mod:`repro.relational.txn.recovery`)."""
        from repro.relational.txn.recovery import run_recovery

        return run_recovery(database)
