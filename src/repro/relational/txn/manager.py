"""Transaction manager: undo lists, WAL integration, recovery replay."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import TransactionError
from repro.relational.catalog import Table
from repro.relational.storage.heap import RID
from repro.relational.txn import wal as wal_kinds
from repro.relational.txn.locks import LockManager, LockMode
from repro.relational.txn.wal import WriteAheadLog


class IsolationLevel(enum.Enum):
    """The two degrees of isolation the paper names (section 1)."""

    REPEATABLE_READ = "repeatable read"
    CURSOR_STABILITY = "cursor stability"


@dataclass
class _UndoEntry:
    kind: str  # INSERT / DELETE / UPDATE
    table: Table
    rid: Optional[RID]
    before: Optional[Tuple[Any, ...]] = None
    after: Optional[Tuple[Any, ...]] = None


@dataclass
class Transaction:
    txn_id: int
    isolation: IsolationLevel
    undo: List[_UndoEntry] = field(default_factory=list)
    active: bool = True


class TransactionManager:
    """Coordinates transactions, the lock manager, and the WAL."""

    def __init__(self):
        self.locks = LockManager()
        self.wal = WriteAheadLog()
        self._ids = itertools.count(1)

    # -- lifecycle ------------------------------------------------------------

    def begin(
        self, isolation: IsolationLevel = IsolationLevel.REPEATABLE_READ
    ) -> Transaction:
        txn = Transaction(next(self._ids), isolation)
        self.wal.append(txn.txn_id, wal_kinds.BEGIN)
        return txn

    def commit(self, txn: Transaction) -> None:
        self._check_active(txn)
        self.wal.append(txn.txn_id, wal_kinds.COMMIT)
        txn.active = False
        txn.undo.clear()
        self.locks.release_all(txn.txn_id)

    def rollback(self, txn: Transaction) -> None:
        self._check_active(txn)
        for entry in reversed(txn.undo):
            if entry.kind == wal_kinds.INSERT:
                entry.table.undo_insert(entry.rid)  # type: ignore[arg-type]
            elif entry.kind == wal_kinds.DELETE:
                entry.table.undo_delete(entry.before)  # type: ignore[arg-type]
            elif entry.kind == wal_kinds.UPDATE:
                entry.table.undo_update(entry.rid, entry.before)  # type: ignore[arg-type]
        self.wal.append(txn.txn_id, wal_kinds.ABORT)
        txn.active = False
        txn.undo.clear()
        self.locks.release_all(txn.txn_id)

    def _check_active(self, txn: Transaction) -> None:
        if not txn.active:
            raise TransactionError(f"transaction {txn.txn_id} is not active")

    # -- change recording (called by the engine's DML paths) ---------------------------

    def record_insert(self, txn: Transaction, table: Table, rid: RID, row) -> None:
        txn.undo.append(_UndoEntry(wal_kinds.INSERT, table, rid, after=row))
        self.wal.append(txn.txn_id, wal_kinds.INSERT, table.name, after=row)

    def record_delete(self, txn: Transaction, table: Table, rid: RID, row) -> None:
        txn.undo.append(_UndoEntry(wal_kinds.DELETE, table, rid, before=row))
        self.wal.append(txn.txn_id, wal_kinds.DELETE, table.name, before=row)

    def record_update(
        self, txn: Transaction, table: Table, rid: RID, before, after
    ) -> None:
        txn.undo.append(
            _UndoEntry(wal_kinds.UPDATE, table, rid, before=before, after=after)
        )
        self.wal.append(
            txn.txn_id, wal_kinds.UPDATE, table.name, before=before, after=after
        )

    # -- recovery -----------------------------------------------------------------

    def recover_into(self, database) -> int:
        """Replay committed work from this WAL into *database*.

        *database* must contain the schema (tables/indexes) but no rows —
        the caller simulates a crash by rebuilding the schema and replaying.
        Returns the number of records applied.
        """
        committed = self.wal.committed_txns()
        applied = 0
        for record in self.wal.records:
            if record.txn_id not in committed:
                continue
            if record.kind == wal_kinds.INSERT:
                table = database.catalog.get_table(record.table)
                table.redo_insert(record.after)
                applied += 1
            elif record.kind == wal_kinds.DELETE:
                table = database.catalog.get_table(record.table)
                table.redo_delete(record.before)
                applied += 1
            elif record.kind == wal_kinds.UPDATE:
                table = database.catalog.get_table(record.table)
                table.redo_update(record.before, record.after)
                applied += 1
        return applied
