"""Transactions: locking, write-ahead logging, rollback and recovery.

The paper's architecture argument is that "transaction, recovery and storage
management ... are completely shared between XNF and regular DBMS users".
This package provides that shared substrate: a table-granularity lock
manager with the two isolation degrees the paper names (repeatable read and
cursor stability), logical undo for ROLLBACK, and a write-ahead log whose
replay reconstructs committed state after a simulated crash.
"""

from repro.relational.txn.locks import LockManager, LockMode
from repro.relational.txn.wal import WriteAheadLog, LogRecord
from repro.relational.txn.manager import Transaction, TransactionManager, IsolationLevel

__all__ = [
    "LockManager",
    "LockMode",
    "WriteAheadLog",
    "LogRecord",
    "Transaction",
    "TransactionManager",
    "IsolationLevel",
]
