"""Table-granularity lock manager with a no-wait conflict policy.

Instead of blocking, a conflicting request raises :class:`DeadlockError`
immediately ("no-wait" deadlock avoidance — the policy Tandem NonStop SQL
shipped with).  Sessions catch it and abort, exactly like a victim of
deadlock detection would; the error is marked ``retryable`` so
``Database.run_retryable()`` re-runs the victim after a backoff.

Under MVCC mode only writers take (X) locks — reads are served from
snapshots and never touch the lock table — so no-wait blocking cannot
starve readers.  The manager is thread-safe: a single mutex guards the
lock table, and a per-transaction reverse index makes ``release_all`` /
``release_shared`` O(locks held by that transaction) instead of a scan
over every locked table.
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, List, Set, Tuple

from repro.errors import DeadlockError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockManager:
    """Tracks table locks per transaction id."""

    def __init__(self):
        self._mutex = threading.Lock()
        # table -> {txn_id: mode}
        self._locks: Dict[str, Dict[int, LockMode]] = {}
        # txn_id -> tables it holds locks on (reverse index)
        self._by_txn: Dict[int, Set[str]] = {}
        #: granted lock requests (upgrades and re-grants included)
        self.acquisitions = 0
        #: no-wait conflicts surfaced as DeadlockError (= waits + timeouts
        #: collapsed into one event under the no-wait policy)
        self.conflicts = 0

    def acquire(self, txn_id: int, table: str, mode: LockMode) -> None:
        with self._mutex:
            holders = self._locks.setdefault(table, {})
            current = holders.get(txn_id)
            if current is LockMode.EXCLUSIVE or current is mode:
                return
            others = {t: m for t, m in holders.items() if t != txn_id}
            if mode is LockMode.SHARED:
                if any(m is LockMode.EXCLUSIVE for m in others.values()):
                    self.conflicts += 1
                    raise DeadlockError(
                        f"txn {txn_id}: table {table} is X-locked by another transaction"
                    )
            else:
                if others:
                    self.conflicts += 1
                    raise DeadlockError(
                        f"txn {txn_id}: table {table} is locked by another transaction"
                    )
            holders[txn_id] = mode
            self._by_txn.setdefault(txn_id, set()).add(table)
            self.acquisitions += 1

    def release(self, txn_id: int, table: str) -> None:
        with self._mutex:
            self._release_locked(txn_id, table)

    def _release_locked(self, txn_id: int, table: str) -> None:
        holders = self._locks.get(table)
        if holders:
            holders.pop(txn_id, None)
            if not holders:
                del self._locks[table]
        tables = self._by_txn.get(txn_id)
        if tables is not None:
            tables.discard(table)
            if not tables:
                del self._by_txn[txn_id]

    def release_all(self, txn_id: int) -> None:
        with self._mutex:
            for table in list(self._by_txn.get(txn_id, ())):
                self._release_locked(txn_id, table)

    def release_shared(self, txn_id: int) -> None:
        """Release only S locks (cursor-stability end-of-statement).

        O(locks held by *txn_id*) via the reverse index — not a scan over
        every locked table in the system.
        """
        with self._mutex:
            for table in list(self._by_txn.get(txn_id, ())):
                holders = self._locks.get(table)
                if holders and holders.get(txn_id) is LockMode.SHARED:
                    self._release_locked(txn_id, table)

    def metrics(self) -> Dict[str, int]:
        """Counter snapshot for ``Database.metrics_snapshot()``."""
        with self._mutex:
            s_held = x_held = 0
            for holders in self._locks.values():
                for mode in holders.values():
                    if mode is LockMode.SHARED:
                        s_held += 1
                    else:
                        x_held += 1
            return {
                "acquisitions": self.acquisitions,
                "conflicts": self.conflicts,
                "held": s_held + x_held,
                "s_held": s_held,
                "x_held": x_held,
                "tables_locked": len(self._locks),
            }

    def holders_snapshot(self) -> List[Tuple[str, int, str]]:
        """Point-in-time ``(table, txn_id, mode)`` rows for SYS_LOCK_HOLDERS."""
        with self._mutex:
            return [
                (table, txn_id, mode.value)
                for table, holders in sorted(self._locks.items())
                for txn_id, mode in sorted(holders.items())
            ]

    def held(self, txn_id: int) -> Set[Tuple[str, LockMode]]:
        with self._mutex:
            return {
                (table, self._locks[table][txn_id])
                for table in self._by_txn.get(txn_id, ())
                if txn_id in self._locks.get(table, {})
            }
