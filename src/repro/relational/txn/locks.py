"""Table-granularity lock manager with a no-wait conflict policy.

The engine is embedded and single-threaded, so instead of blocking, a
conflicting request raises :class:`DeadlockError` immediately ("no-wait"
deadlock avoidance — the policy Tandem NonStop SQL shipped with).  Sessions
catch it and abort, exactly like a victim of deadlock detection would.
"""

from __future__ import annotations

import enum
from typing import Dict, Set, Tuple

from repro.errors import DeadlockError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockManager:
    """Tracks table locks per transaction id."""

    def __init__(self):
        # table -> {txn_id: mode}
        self._locks: Dict[str, Dict[int, LockMode]] = {}
        #: granted lock requests (upgrades and re-grants included)
        self.acquisitions = 0
        #: no-wait conflicts surfaced as DeadlockError (= waits + timeouts
        #: collapsed into one event under the no-wait policy)
        self.conflicts = 0

    def acquire(self, txn_id: int, table: str, mode: LockMode) -> None:
        holders = self._locks.setdefault(table, {})
        current = holders.get(txn_id)
        if current is LockMode.EXCLUSIVE or current is mode:
            return
        others = {t: m for t, m in holders.items() if t != txn_id}
        if mode is LockMode.SHARED:
            if any(m is LockMode.EXCLUSIVE for m in others.values()):
                self.conflicts += 1
                raise DeadlockError(
                    f"txn {txn_id}: table {table} is X-locked by another transaction"
                )
        else:
            if others:
                self.conflicts += 1
                raise DeadlockError(
                    f"txn {txn_id}: table {table} is locked by another transaction"
                )
        holders[txn_id] = mode
        self.acquisitions += 1

    def release(self, txn_id: int, table: str) -> None:
        holders = self._locks.get(table)
        if holders:
            holders.pop(txn_id, None)
            if not holders:
                del self._locks[table]

    def release_all(self, txn_id: int) -> None:
        for table in list(self._locks):
            self.release(txn_id, table)

    def release_shared(self, txn_id: int) -> None:
        """Release only S locks (cursor-stability end-of-statement)."""
        for table, holders in list(self._locks.items()):
            if holders.get(txn_id) is LockMode.SHARED:
                self.release(txn_id, table)

    def metrics(self) -> Dict[str, int]:
        """Counter snapshot for ``Database.metrics_snapshot()``."""
        return {
            "acquisitions": self.acquisitions,
            "conflicts": self.conflicts,
            "held": sum(len(holders) for holders in self._locks.values()),
        }

    def held(self, txn_id: int) -> Set[Tuple[str, LockMode]]:
        return {
            (table, mode)
            for table, holders in self._locks.items()
            for holder, mode in holders.items()
            if holder == txn_id
        }
