"""ARIES-style crash recovery: analysis, redo from checkpoint, undo of losers.

:func:`run_recovery` restores a crashed database to the state containing
exactly the stable-committed transactions:

1. **Analysis** — read the CRC-verified stable prefix of the WAL (a torn
   flush truncates the log at the first bad record), find the last
   *complete* fuzzy checkpoint, and classify every transaction as
   committed, aborted, or loser (in flight at the crash).
2. **Page load** — read every disk page, verifying checksums.  A page that
   fails verification (torn write) is reset to empty and flagged; such
   pages get a dedicated redo pre-pass over the log records that predate
   the checkpoint, since the checkpoint's "already on disk" guarantee no
   longer holds for them.
3. **Redo** — repeat history from the checkpoint's begin record: every
   data record (including compensation records of rolled-back work) is
   re-applied iff the page LSN is older than the record — the page-LSN
   test makes redo idempotent.
4. **Undo** — losers are rolled back in reverse LSN order, skipping
   actions already compensated at runtime (statement-level rollbacks);
   each undo appends a CLR and a final ABORT record, and the log is
   forced, so recovering twice is a no-op the second time.
5. **Rebuild** — pages are written back (fresh checksums), heap-file page
   registries and row counts are rebuilt from the page slot tags, every
   index is rebuilt from its heap, the buffer pool is invalidated (frames
   predate recovery), the plan cache is flushed, catalog versions are
   bumped, and the transaction-id clock resumes past the log's maximum.

The module operates on raw disk images via
:meth:`DiskManager.read_unchecked` / :meth:`DiskManager.write_unlogged`,
bypassing the buffer pool and the fault injector: recovery itself is
assumed not to crash (crash-during-recovery is out of scope and documented
in DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.relational.storage.page import Page
from repro.relational.txn import wal as wal_kinds
from repro.relational.txn.wal import LogRecord

#: record kinds that change page contents
_DATA_KINDS = frozenset(
    {wal_kinds.INSERT, wal_kinds.DELETE, wal_kinds.UPDATE, wal_kinds.CLR}
)


@dataclass
class RecoveryStats:
    """What one recovery pass did (the fault ledger reports these)."""

    log_records_scanned: int = 0
    #: LSN after which the stable log was truncated by a CRC failure
    log_truncated_at: Optional[int] = None
    checkpoint_lsn: int = 0
    committed_txns: int = 0
    aborted_txns: int = 0
    loser_txns: int = 0
    redo_applied: int = 0
    undo_applied: int = 0
    torn_pages_detected: List[int] = field(default_factory=list)
    pages_rebuilt: int = 0
    wall_time_s: float = 0.0

    def as_dict(self) -> Dict:
        return {
            "log_records_scanned": self.log_records_scanned,
            "log_truncated_at": self.log_truncated_at,
            "checkpoint_lsn": self.checkpoint_lsn,
            "committed_txns": self.committed_txns,
            "aborted_txns": self.aborted_txns,
            "loser_txns": self.loser_txns,
            "redo_applied": self.redo_applied,
            "undo_applied": self.undo_applied,
            "torn_pages_detected": list(self.torn_pages_detected),
            "pages_rebuilt": self.pages_rebuilt,
            "wall_time_s": round(self.wall_time_s, 6),
        }


def run_recovery(database) -> RecoveryStats:
    """Recover *database* in place; see the module docstring."""
    start = time.perf_counter()
    stats = RecoveryStats()
    wal = database.txn_manager.wal
    disk = database.disk

    # -- 1. analysis ---------------------------------------------------------
    records = wal.stable_records()
    all_stable = len(wal.records)  # tail is empty after a crash
    stats.log_records_scanned = len(records)
    if len(records) < all_stable:
        stats.log_truncated_at = records[-1].lsn if records else 0

    committed: Set[int] = set()
    aborted: Set[int] = set()
    seen: Set[int] = set()
    checkpoint_lsn = 0
    max_txn_id = 0
    for record in records:
        if record.kind == wal_kinds.CKPT_END and record.extra:
            checkpoint_lsn = record.extra.get("begin_lsn", 0)
        if record.txn_id > 0:
            seen.add(record.txn_id)
            max_txn_id = max(max_txn_id, record.txn_id)
            if record.kind == wal_kinds.COMMIT:
                committed.add(record.txn_id)
            elif record.kind == wal_kinds.ABORT:
                aborted.add(record.txn_id)
    losers = seen - committed - aborted
    stats.checkpoint_lsn = checkpoint_lsn
    stats.committed_txns = len(committed)
    stats.aborted_txns = len(aborted)
    stats.loser_txns = len(losers)

    # -- 2. load pages, detecting torn writes --------------------------------
    pages: Dict[int, Page] = {}
    torn: List[int] = []
    for page_id in disk.page_ids():
        page, ok = disk.read_unchecked(page_id)
        if not ok:
            torn.append(page_id)
            page = Page(page_id, disk.page_size)
        pages[page_id] = page
    stats.torn_pages_detected = torn
    torn_set = set(torn)

    def apply(record: LogRecord) -> bool:
        """Re-apply one data record iff the page LSN is older (redo test)."""
        kind = record.comp_kind if record.kind == wal_kinds.CLR else record.kind
        page_id, slot = record.rid  # type: ignore[misc]
        page = pages.get(page_id)
        if page is None:
            disk.ensure(page_id)
            page = Page(page_id, disk.page_size)
            pages[page_id] = page
        if page.page_lsn >= record.lsn:
            return False
        while len(page.slots) <= slot:
            page.slots.append(None)
        if kind in (wal_kinds.INSERT, wal_kinds.UPDATE):
            page.slots[slot] = (record.table, record.after)
        elif kind == wal_kinds.DELETE:
            page.slots[slot] = None
        page.page_lsn = record.lsn
        return True

    # -- 3. redo: torn-page pre-pass, then repeat history from checkpoint ----
    if torn_set:
        for record in records:
            if record.lsn >= checkpoint_lsn:
                break
            if (
                record.kind in _DATA_KINDS
                and record.rid is not None
                and record.rid[0] in torn_set
            ):
                if apply(record):
                    stats.redo_applied += 1
    for record in records:
        if record.lsn < checkpoint_lsn:
            continue
        if record.kind in _DATA_KINDS and record.rid is not None:
            if apply(record):
                stats.redo_applied += 1

    # -- 4. undo losers (reverse order, skipping compensated actions) --------
    compensated: Dict[int, Set[int]] = {}
    for record in records:
        if (
            record.kind == wal_kinds.CLR
            and record.txn_id in losers
            and record.undo_lsn is not None
        ):
            compensated.setdefault(record.txn_id, set()).add(record.undo_lsn)
    to_undo = [
        record
        for record in records
        if record.txn_id in losers
        and record.kind in (wal_kinds.INSERT, wal_kinds.DELETE, wal_kinds.UPDATE)
        and record.lsn not in compensated.get(record.txn_id, ())
    ]
    for record in reversed(to_undo):
        if record.kind == wal_kinds.INSERT:
            clr = wal.append(
                record.txn_id,
                wal_kinds.CLR,
                record.table,
                before=record.after,
                rid=record.rid,
                comp_kind=wal_kinds.DELETE,
                undo_lsn=record.lsn,
            )
        elif record.kind == wal_kinds.DELETE:
            clr = wal.append(
                record.txn_id,
                wal_kinds.CLR,
                record.table,
                after=record.before,
                rid=record.rid,
                comp_kind=wal_kinds.INSERT,
                undo_lsn=record.lsn,
            )
        else:  # UPDATE
            clr = wal.append(
                record.txn_id,
                wal_kinds.CLR,
                record.table,
                before=record.after,
                after=record.before,
                rid=record.rid,
                comp_kind=wal_kinds.UPDATE,
                undo_lsn=record.lsn,
            )
        apply(clr)
        stats.undo_applied += 1
    for txn_id in sorted(losers):
        wal.append(txn_id, wal_kinds.ABORT)
    wal.flush()

    # -- 5. write pages back and rebuild runtime structures ------------------
    for page in pages.values():
        page.recompute_used_bytes()
        page.dirty = False
        disk.write_unlogged(page)
    stats.pages_rebuilt = len(pages)

    _rebuild_runtime(database, pages)
    database.txn_manager.resume_after(max_txn_id)

    stats.wall_time_s = time.perf_counter() - start
    return stats


def _rebuild_runtime(database, pages: Dict[int, Page]) -> None:
    """Rebuild every in-memory structure derived from the page store."""
    # Frames (and any pins the crashed statement leaked) predate recovery.
    database.buffer_pool.invalidate()

    # Page slot tags say which tables live where; heap files re-learn
    # their page sets from one pass over the recovered store.
    pages_by_table: Dict[str, List[int]] = {}
    for page_id in sorted(pages):
        for content in pages[page_id].slots:
            if content is not None:
                owners = pages_by_table.setdefault(content[0], [])
                if not owners or owners[-1] != page_id:
                    owners.append(page_id)

    for name, table in database.catalog.tables.items():
        heap = table.heap
        page_ids = []
        seen: Set[int] = set()
        for page_id in pages_by_table.get(name, []):
            if page_id not in seen:
                seen.add(page_id)
                page_ids.append(page_id)
        heap._page_ids = page_ids
        heap._page_id_set = set(page_ids)
        for index in table.indexes.values():
            index.clear()
        count = 0
        for rid, row in heap.scan():
            count += 1
            for index in table.indexes.values():
                index.insert_row(row, rid)
        heap.row_count = count
        table.stats.row_count = count
        database.catalog.bump_version(name)

    # Compiled plans and pooled scratch worktables bind pre-crash Table
    # state; both are flushed (the plan cache counts the invalidations).
    database.plan_cache.invalidate_all()
    database.scratch_tables.clear()
    database._txn = None
