"""B+-tree index with leaf chaining for range scans.

Design notes
------------
* Keys are normalised component-wise with :func:`repro.relational.types.sort_key`
  so ints/floats/bools interoperate and ordering is total within a column's
  domain.
* Duplicates are stored as a set of RIDs per key.
* Deletion is *lazy* (keys are removed from leaves, but nodes are not merged
  or rebalanced) — the same policy PostgreSQL's nbtree uses: lookups stay
  correct and structure is reclaimed on bulk rebuild.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Set, Tuple

import bisect

from repro.relational.indexes.base import Index, Key
from repro.relational.storage.heap import RID
from repro.relational.types import sort_key

#: Maximum number of keys per node before a split.
DEFAULT_ORDER = 64

NormKey = Tuple[Any, ...]


def _normalise(key: Key) -> NormKey:
    return tuple(sort_key(component) for component in key)


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: List[NormKey] = []
        # parallel to keys: (original_key, set of RIDs)
        self.values: List[Tuple[Key, Set[RID]]] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: List[NormKey] = []
        self.children: List[Any] = []  # _Leaf or _Internal


class BTreeIndex(Index):
    """Order-``DEFAULT_ORDER`` B+-tree supporting equality and range scans."""

    supports_range = True

    def __init__(self, *args, order: int = DEFAULT_ORDER, **kwargs):
        super().__init__(*args, **kwargs)
        if order < 4:
            raise ValueError("B+-tree order must be at least 4")
        self.order = order
        self._root: Any = _Leaf()
        self._size = 0

    # -- lookup ----------------------------------------------------------------

    def search(self, key: Key) -> List[RID]:
        with self._latch:
            norm = _normalise(key)
            leaf = self._find_leaf(norm)
            pos = bisect.bisect_left(leaf.keys, norm)
            if pos < len(leaf.keys) and leaf.keys[pos] == norm:
                return sorted(leaf.values[pos][1])
            return []

    def range_scan(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[Key, RID]]:
        """(original_key, rid) pairs in key order within [low, high].

        Materialised under the index latch: lazily walking the live leaf
        chain would let a concurrent split double-yield or skip keys.
        """
        with self._latch:
            return iter(
                list(self._iter_range(low, high, low_inclusive, high_inclusive))
            )

    def _iter_range(
        self,
        low: Optional[Key],
        high: Optional[Key],
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> Iterator[Tuple[Key, RID]]:
        norm_high = _normalise(high) if high is not None else None
        if low is not None:
            norm_low = _normalise(low)
            leaf = self._find_leaf(norm_low)
            pos = bisect.bisect_left(leaf.keys, norm_low)
            if not low_inclusive:
                while pos < len(leaf.keys) and leaf.keys[pos] == norm_low:
                    pos += 1
        else:
            leaf = self._leftmost_leaf()
            pos = 0
        while leaf is not None:
            while pos < len(leaf.keys):
                norm = leaf.keys[pos]
                if norm_high is not None:
                    if high_inclusive and norm > norm_high:
                        return
                    if not high_inclusive and norm >= norm_high:
                        return
                original_key, rids = leaf.values[pos]
                for rid in sorted(rids):
                    yield original_key, rid
                pos += 1
            leaf = leaf.next
            pos = 0

    # -- maintenance -------------------------------------------------------------

    def _insert(self, key: Key, rid: RID) -> None:
        norm = _normalise(key)
        split = self._insert_into(self._root, norm, key, rid)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _delete(self, key: Key, rid: RID) -> None:
        norm = _normalise(key)
        leaf = self._find_leaf(norm)
        pos = bisect.bisect_left(leaf.keys, norm)
        if pos < len(leaf.keys) and leaf.keys[pos] == norm:
            _, rids = leaf.values[pos]
            if rid in rids:
                rids.discard(rid)
                self._size -= 1
                if not rids:
                    leaf.keys.pop(pos)
                    leaf.values.pop(pos)

    def clear(self) -> None:
        with self._latch:
            self._root = _Leaf()
            self._size = 0

    def __len__(self) -> int:
        return self._size

    def distinct_keys(self) -> int:
        with self._latch:
            count = 0
            leaf = self._leftmost_leaf()
            while leaf is not None:
                count += len(leaf.keys)
                leaf = leaf.next
            return count

    # -- internals ------------------------------------------------------------

    def _find_leaf(self, norm: NormKey) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            pos = bisect.bisect_right(node.keys, norm)
            node = node.children[pos]
        return node

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def _insert_into(
        self, node: Any, norm: NormKey, key: Key, rid: RID
    ) -> Optional[Tuple[NormKey, Any]]:
        """Insert and return (separator, new_right_node) if *node* split."""
        if isinstance(node, _Leaf):
            pos = bisect.bisect_left(node.keys, norm)
            if pos < len(node.keys) and node.keys[pos] == norm:
                rids = node.values[pos][1]
                if rid not in rids:
                    rids.add(rid)
                    self._size += 1
                return None
            node.keys.insert(pos, norm)
            node.values.insert(pos, (key, {rid}))
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        pos = bisect.bisect_right(node.keys, norm)
        split = self._insert_into(node.children[pos], norm, key, rid)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(pos, separator)
        node.children.insert(pos + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> Tuple[NormKey, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[NormKey, _Internal]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, right
