"""Common index interface.

Indexes map key tuples (values of the indexed columns) to sets of RIDs.
Rows whose key contains a NULL are not indexed: SQL equality never matches
NULL, and our executor routes ``IS NULL`` predicates to scans.

Every index carries a latch serialising structural changes against
lookups.  MVCC readers take no table locks, so a scan can run while a
writer splits B-tree nodes or rehashes buckets; without the latch a
concurrent split can double-yield or skip committed keys mid-iteration.
Subclass lookups must acquire it (range scans materialise their matches
under it), and the maintenance entry points here hold it so the
unique-check + insert pair is atomic as well.
"""

from __future__ import annotations

import threading

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IntegrityError
from repro.relational.storage.heap import RID

Key = Tuple[Any, ...]


class Index:
    """Abstract index over a fixed list of column positions."""

    #: set by subclasses: whether range_scan is supported
    supports_range = False

    def __init__(
        self,
        name: str,
        table: str,
        column_names: Sequence[str],
        column_positions: Sequence[int],
        unique: bool = False,
    ):
        self.name = name
        self.table = table
        self.column_names = list(column_names)
        self.column_positions = list(column_positions)
        self.unique = unique
        self._latch = threading.RLock()

    # -- key extraction ------------------------------------------------------

    def key_of(self, row: Tuple[Any, ...]) -> Optional[Key]:
        """Extract the index key from a row; None if any component is NULL."""
        key = tuple(row[pos] for pos in self.column_positions)
        if any(component is None for component in key):
            return None
        return key

    # -- maintenance ---------------------------------------------------------

    def insert_row(self, row: Tuple[Any, ...], rid: RID) -> None:
        key = self.key_of(row)
        if key is None:
            return
        with self._latch:
            if self.unique and self.search(key):
                raise IntegrityError(
                    f"unique index {self.name} violated by key {key!r}"
                )
            self._insert(key, rid)

    def delete_row(self, row: Tuple[Any, ...], rid: RID) -> None:
        key = self.key_of(row)
        if key is None:
            return
        with self._latch:
            self._delete(key, rid)

    def update_row(
        self, old_row: Tuple[Any, ...], new_row: Tuple[Any, ...], rid: RID
    ) -> None:
        old_key = self.key_of(old_row)
        new_key = self.key_of(new_row)
        if old_key == new_key:
            return
        with self._latch:
            if old_key is not None:
                self._delete(old_key, rid)
            if new_key is not None:
                if self.unique and self.search(new_key):
                    raise IntegrityError(
                        f"unique index {self.name} violated by key {new_key!r}"
                    )
                self._insert(new_key, rid)

    # -- lookup (subclass responsibilities) ------------------------------------

    def search(self, key: Key) -> List[RID]:
        raise NotImplementedError

    def range_scan(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[Key, RID]]:
        raise NotImplementedError

    def _insert(self, key: Key, rid: RID) -> None:
        raise NotImplementedError

    def _delete(self, key: Key, rid: RID) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError
