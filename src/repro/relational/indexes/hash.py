"""Hash index: equality lookups in O(1)."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.relational.indexes.base import Index, Key
from repro.relational.storage.heap import RID


class HashIndex(Index):
    """Dictionary-backed equality index."""

    supports_range = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._buckets: Dict[Key, Set[RID]] = {}
        self._size = 0

    def search(self, key: Key) -> List[RID]:
        with self._latch:
            return sorted(self._buckets.get(key, ()))

    def _insert(self, key: Key, rid: RID) -> None:
        bucket = self._buckets.setdefault(key, set())
        if rid not in bucket:
            bucket.add(rid)
            self._size += 1

    def _delete(self, key: Key, rid: RID) -> None:
        bucket = self._buckets.get(key)
        if bucket and rid in bucket:
            bucket.discard(rid)
            self._size -= 1
            if not bucket:
                del self._buckets[key]

    def clear(self) -> None:
        with self._latch:
            self._buckets.clear()
            self._size = 0

    def __len__(self) -> int:
        return self._size

    def distinct_keys(self) -> int:
        return len(self._buckets)
