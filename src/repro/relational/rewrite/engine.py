"""QGM rewrite rules: select-box merging, predicate pushdown, folding.

Rules run to a (bounded) fixpoint.  Each rule preserves bag semantics:

* **merge** — a quantifier over a plain SPJ child box is inlined into its
  parent (covers SQL view merging, since views become derived quantifiers),
* **pushdown** — a parent predicate referencing exactly one derived
  quantifier moves inside that child (also through set-operation arms),
* **fold** — constant arithmetic/comparisons evaluate at compile time and
  trivially-true conjuncts disappear.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ExecutionError
from repro.relational.qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    HeadColumn,
    OuterRef,
    QGMColumnRef,
    Quantifier,
    SelectBox,
    SetOpBox,
    SubqueryExpr,
    TopBox,
    ValuesBox,
    walk_resolved,
)
from repro.relational.sql import ast
from repro.relational.types import sql_arith, sql_compare

_MAX_PASSES = 10


class Rewriter:
    """Applies the rewrite rules to a box tree, in place."""

    def __init__(self, enable_merge: bool = True, enable_pushdown: bool = True,
                 enable_fold: bool = True):
        self.enable_merge = enable_merge
        self.enable_pushdown = enable_pushdown
        self.enable_fold = enable_fold
        self.merges = 0
        self.pushdowns = 0
        self.folds = 0

    def rewrite(self, box: Box) -> Box:
        for _ in range(_MAX_PASSES):
            before = (self.merges, self.pushdowns, self.folds)
            box = self._rewrite_box(box)
            if (self.merges, self.pushdowns, self.folds) == before:
                break
        return box

    # -- traversal --------------------------------------------------------------

    def _rewrite_box(self, box: Box) -> Box:
        if isinstance(box, SelectBox):
            return self._rewrite_select(box)
        if isinstance(box, GroupByBox):
            if box.input is not None:
                box.input.box = self._rewrite_box(box.input.box)
            if self.enable_fold:
                box.having = self._fold_predicates(box.having)
                for col in box.head:
                    col.expr = self._fold(col.expr)
            self._rewrite_subqueries_in(box)
            return box
        if isinstance(box, SetOpBox):
            box.left = self._rewrite_box(box.left)
            box.right = self._rewrite_box(box.right)
            return box
        if isinstance(box, TopBox):
            box.child = self._rewrite_box(box.child)
            return box
        return box

    def _rewrite_select(self, box: SelectBox) -> Box:
        for quant in box.quantifiers:
            quant.box = self._rewrite_box(quant.box)
        if self.enable_fold:
            box.predicates = self._fold_predicates(box.predicates)
            for col in box.head:
                col.expr = self._fold(col.expr)
        if self.enable_merge:
            self._merge_children(box)
        if self.enable_pushdown:
            self._push_down(box)
        self._rewrite_subqueries_in(box)
        return box

    def _rewrite_subqueries_in(self, box: Box) -> None:
        from repro.relational.qgm.model import box_expressions

        for expr in box_expressions(box):
            for node in walk_resolved(expr):
                if isinstance(node, SubqueryExpr):
                    node.box = self._rewrite_box(node.box)

    # -- rule: merge SPJ child boxes ----------------------------------------------

    def _merge_children(self, box: SelectBox) -> None:
        outer_names = {name for name, _ in box.outer_joins}
        changed = True
        while changed:
            changed = False
            for quant in list(box.quantifiers):
                if quant.name in outer_names:
                    continue  # null-supplying sides keep their box boundary
                child = quant.box
                if not self._mergeable(child):
                    continue
                self._merge_one(box, quant, child)  # type: ignore[arg-type]
                self.merges += 1
                changed = True
                break

    def _mergeable(self, child: Box) -> bool:
        return (
            isinstance(child, SelectBox)
            and not child.distinct
            and not child.outer_joins
            and len(child.quantifiers) >= 1
        )

    def _merge_one(
        self, box: SelectBox, quant: Quantifier, child: SelectBox
    ) -> None:
        taken = {q.name for q in box.quantifiers if q is not quant}
        rename: Dict[str, str] = {}
        for inner in child.quantifiers:
            new_name = inner.name
            while new_name in taken:
                new_name = f"{new_name}_{child.id}"
            rename[inner.name] = new_name
            taken.add(new_name)

        def rename_expr(expr: ast.Expr) -> ast.Expr:
            return _substitute(
                expr,
                lambda ref: QGMColumnRef(
                    rename.get(ref.quantifier, ref.quantifier), ref.column
                ),
            )

        head_map = {
            col.name: rename_expr(col.expr) for col in child.head
        }

        def replace_ref(ref: QGMColumnRef) -> ast.Expr:
            if ref.quantifier != quant.name:
                return ref
            if ref.column not in head_map:
                raise ExecutionError(
                    f"merge: column {ref.column} missing from child head"
                )
            return head_map[ref.column]

        for col in box.head:
            col.expr = _substitute(col.expr, replace_ref)
        box.predicates = [_substitute(p, replace_ref) for p in box.predicates]
        box.outer_joins = [
            (name, [_substitute(p, replace_ref) for p in preds])
            for name, preds in box.outer_joins
        ]
        position = box.quantifiers.index(quant)
        new_quants = [
            Quantifier(rename[inner.name], inner.box, inner.kind)
            for inner in child.quantifiers
        ]
        box.quantifiers[position : position + 1] = new_quants
        box.predicates.extend(rename_expr(p) for p in child.predicates)

    # -- rule: predicate pushdown ----------------------------------------------------

    def _push_down(self, box: SelectBox) -> None:
        outer_names = {name for name, _ in box.outer_joins}
        kept: List[ast.Expr] = []
        for pred in box.predicates:
            refs = {
                node.quantifier
                for node in walk_resolved(pred)
                if isinstance(node, QGMColumnRef)
            }
            if len(refs) != 1:
                kept.append(pred)
                continue
            name = next(iter(refs))
            if name in outer_names:
                kept.append(pred)
                continue
            quant = box.quantifier(name)
            if self._push_into(quant.box, name, pred):
                self.pushdowns += 1
            else:
                kept.append(pred)
        box.predicates = kept

    def _push_into(self, child: Box, qname: str, pred: ast.Expr) -> bool:
        """Try to move *pred* (which references only *qname*) inside child."""
        if isinstance(child, SelectBox):
            # Child must be one the merge rule skipped (e.g. DISTINCT);
            # filtering before DISTINCT over whole rows is equivalent.
            head_map = {col.name: col.expr for col in child.head}

            def replace(ref: QGMColumnRef) -> ast.Expr:
                if ref.quantifier != qname:
                    return ref
                return head_map[ref.column]

            try:
                child.predicates.append(_substitute(pred, replace))
            except KeyError:
                return False
            return True
        if isinstance(child, SetOpBox):
            # Distribute over both arms; each arm sees the predicate over its
            # own head.  Safe for UNION/INTERSECT/EXCEPT in both variants.
            columns = child.output_columns()
            for arm_attr in ("left", "right"):
                arm = getattr(child, arm_attr)
                arm_columns = arm.output_columns()
                mapping = dict(zip(columns, arm_columns))

                def replace_arm(ref: QGMColumnRef, mapping=mapping):
                    if ref.quantifier != qname:
                        return ref
                    return QGMColumnRef("__arm__", mapping[ref.column])

                arm_pred = _substitute(pred, replace_arm)
                wrapped = _wrap_with_filter(arm, arm_pred)
                if wrapped is None:
                    return False
                setattr(child, arm_attr, wrapped)
            return True
        return False

    # -- rule: constant folding -----------------------------------------------------

    def _fold_predicates(self, preds: List[ast.Expr]) -> List[ast.Expr]:
        result: List[ast.Expr] = []
        for pred in preds:
            folded = self._fold(pred)
            if isinstance(folded, ast.Literal) and folded.value is True:
                self.folds += 1
                continue
            result.append(folded)
        return result

    def _fold(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.BinaryOp):
            left = self._fold(expr.left)
            right = self._fold(expr.right)
            if isinstance(left, ast.Literal) and isinstance(right, ast.Literal):
                value = _eval_const(expr.op, left.value, right.value)
                if value is not _NO_FOLD:
                    self.folds += 1
                    return ast.Literal(value)
            if expr.op == "AND":
                if isinstance(left, ast.Literal) and left.value is True:
                    self.folds += 1
                    return right
                if isinstance(right, ast.Literal) and right.value is True:
                    self.folds += 1
                    return left
            return ast.BinaryOp(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = self._fold(expr.operand)
            if (
                expr.op == "-"
                and isinstance(operand, ast.Literal)
                and isinstance(operand.value, (int, float))
            ):
                self.folds += 1
                return ast.Literal(-operand.value)
            return ast.UnaryOp(expr.op, operand)
        return expr


_NO_FOLD = object()


def _eval_const(op: str, left, right):
    try:
        if op in ("+", "-", "*", "/", "%", "||"):
            return sql_arith(op, left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return sql_compare(op, left, right)
    except Exception:
        return _NO_FOLD
    return _NO_FOLD


def _substitute(expr: ast.Expr, replace) -> ast.Expr:
    """Rebuild *expr* with every QGMColumnRef passed through *replace*."""
    if isinstance(expr, QGMColumnRef):
        return replace(expr)
    if isinstance(expr, (ast.Literal, OuterRef)):
        return expr
    if isinstance(expr, SubqueryExpr):
        # References inside the subquery box to the merged quantifier are
        # OuterRefs (different node type), which stay valid because the
        # substitution only renames/inlines refs of the *current* box.
        operand = (
            _substitute(expr.operand, replace) if expr.operand is not None else None
        )
        return SubqueryExpr(expr.kind, expr.box, operand, expr.negated, expr.correlated)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op, _substitute(expr.left, replace), _substitute(expr.right, replace)
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _substitute(expr.operand, replace))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_substitute(expr.operand, replace), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(
            _substitute(expr.operand, replace),
            _substitute(expr.low, replace),
            _substitute(expr.high, replace),
            expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            _substitute(expr.operand, replace),
            [_substitute(item, replace) for item in expr.items],
            expr.negated,
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            [_substitute(arg, replace) for arg in expr.args],
            distinct=expr.distinct,
            star=expr.star,
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            [
                (_substitute(cond, replace), _substitute(result, replace))
                for cond, result in expr.whens
            ],
            (
                _substitute(expr.else_result, replace)
                if expr.else_result is not None
                else None
            ),
        )
    return expr


def _wrap_with_filter(arm: Box, pred: ast.Expr) -> Optional[Box]:
    """Wrap a set-op arm in a filtering SelectBox (pred over '__arm__')."""
    if isinstance(arm, SelectBox) and not arm.distinct:
        head_map = {col.name: col.expr for col in arm.head}

        def replace(ref: QGMColumnRef) -> ast.Expr:
            if ref.quantifier != "__arm__":
                return ref
            return head_map[ref.column]

        arm.predicates.append(_substitute(pred, replace))
        return arm
    wrapper = SelectBox("pushdown")
    quant = Quantifier("__arm__", arm)
    wrapper.quantifiers.append(quant)
    for col in arm.output_columns():
        wrapper.head.append(HeadColumn(col, QGMColumnRef("__arm__", col)))
    wrapper.predicates.append(pred)
    return wrapper
