"""Rule-based query rewrite, after Starburst's rewrite engine [PHH92].

The paper leans on this component twice: ordinary view merging ("merging of
views with queries, predicate pushdown") and the claim that XNF needs *no
changes* here because the XNF semantic rewrite emits plain SQL boxes first.
Experiment E5 ablates these rules to show their effect on path-expression
queries.
"""

from repro.relational.rewrite.engine import Rewriter

__all__ = ["Rewriter"]
