"""Recursive-descent parser for the SQL dialect.

Grammar summary::

    statement   := select | insert | update | delete | create_table
                 | create_index | create_view | drop | analyze
                 | BEGIN | COMMIT | ROLLBACK
    select      := select_core (set_op select_core)* [ORDER BY ...] [LIMIT ...]
    select_core := SELECT [DISTINCT] items FROM table_refs [WHERE expr]
                   [GROUP BY exprs] [HAVING expr]
    expr        := precedence ladder: OR < AND < NOT < comparison/IN/LIKE/
                   BETWEEN/IS < add < mul < unary < primary

The parser is a class so the XNF parser (:class:`repro.xnf.lang.XNFParser`)
can subclass it and reuse the expression and query machinery while adding
the OUT OF / RELATE / TAKE constructs on top.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.relational.sql import ast
from repro.relational.sql.lexer import EOF, IDENT, NUMBER, OP, STRING, Token, tokenize

#: words that may never be used as implicit aliases
RESERVED = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON JOIN INNER
    EXPLAIN
    LEFT RIGHT FULL OUTER CROSS UNION INTERSECT EXCEPT AND OR NOT IN EXISTS
    BETWEEN IS NULL LIKE CASE WHEN THEN ELSE END DISTINCT ALL INSERT INTO
    VALUES UPDATE SET DELETE CREATE TABLE INDEX VIEW DROP IF ASC DESC USING
    PRIMARY KEY REFERENCES UNIQUE BEGIN COMMIT ROLLBACK ANALYZE TRUE FALSE
    OUT TAKE RELATE SUCH WITH
    """.split()
)

_SCALAR_FUNCS = frozenset(
    {"ABS", "LOWER", "UPPER", "LENGTH", "COALESCE", "NULLIF", "ROUND", "MOD", "SUBSTR"}
)


class SQLParser:
    """Token-stream parser; one instance per statement batch."""

    hyphen_idents = False

    def __init__(self, source: str):
        self.source = source
        self.toks = tokenize(source, hyphen_idents=self.hyphen_idents)
        self.pos = 0
        self._param_count = 0  # ordinal for ? placeholders, per batch

    # -- token helpers -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        pos = min(self.pos + offset, len(self.toks) - 1)
        return self.toks[pos]

    def advance(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == IDENT and tok.upper() in words

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        tok = self.peek()
        if tok.kind == IDENT and tok.upper() == word:
            return self.advance()
        raise ParseError(f"expected {word}, found {tok.text!r}", tok.line, tok.column)

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind == OP and tok.text in ops

    def accept_op(self, *ops: str) -> bool:
        if self.at_op(*ops):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        tok = self.peek()
        if tok.kind == OP and tok.text == op:
            return self.advance()
        raise ParseError(f"expected {op!r}, found {tok.text!r}", tok.line, tok.column)

    def expect_ident(self, what: str = "identifier") -> str:
        tok = self.peek()
        if tok.kind == IDENT and tok.upper() not in RESERVED:
            self.advance()
            return tok.text
        raise ParseError(f"expected {what}, found {tok.text!r}", tok.line, tok.column)

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"{message}, found {tok.text!r}", tok.line, tok.column)

    # -- statements ----------------------------------------------------------

    def parse_statements(self) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        while self.peek().kind != EOF:
            if self.accept_op(";"):
                continue
            statements.append(self.parse_statement())
            if self.peek().kind != EOF:
                self.expect_op(";")
        return statements

    def parse_statement(self) -> ast.Statement:
        if self.at_keyword("SELECT") or self.at_op("("):
            return self.parse_query()
        if self.at_keyword("INSERT"):
            return self.parse_insert()
        if self.at_keyword("UPDATE"):
            return self.parse_update()
        if self.at_keyword("DELETE"):
            return self.parse_delete()
        if self.at_keyword("CREATE"):
            return self.parse_create()
        if self.at_keyword("DROP"):
            return self.parse_drop()
        if self.accept_keyword("ANALYZE"):
            table = None
            if self.peek().kind == IDENT:
                table = self.expect_ident("table name")
            return ast.AnalyzeStmt(table)
        if self.accept_keyword("EXPLAIN"):
            analyze = bool(self.accept_keyword("ANALYZE"))
            return ast.ExplainStmt(self.parse_query(), analyze=analyze)
        if self.accept_keyword("BEGIN"):
            self.accept_keyword("TRANSACTION")
            return ast.BeginStmt()
        if self.accept_keyword("COMMIT"):
            return ast.CommitStmt()
        if self.accept_keyword("ROLLBACK"):
            return ast.RollbackStmt()
        raise self.error("expected a statement")

    # -- queries --------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        """Parse a full query: set ops, then trailing ORDER BY / LIMIT."""
        query = self._parse_query_term()
        while self.at_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self.advance().upper()
            all_flag = self.accept_keyword("ALL")
            if not all_flag:
                self.accept_keyword("DISTINCT")
            right = self._parse_query_term()
            query = ast.SetOpStmt(op, all_flag, query, right)
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        if order_by or limit is not None or offset is not None:
            query.order_by = order_by
            query.limit = limit
            query.offset = offset
        return query

    def _parse_query_term(self) -> ast.Query:
        if self.at_op("("):
            # Either a parenthesised query or a parse error surfaced below.
            save = self.pos
            self.advance()
            if self.at_keyword("SELECT") or self.at_op("("):
                inner = self.parse_query()
                self.expect_op(")")
                return inner
            self.pos = save
        return self.parse_select_core()

    def parse_select_core(self) -> ast.SelectStmt:
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        else:
            self.accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self.accept_op(","):
            items.append(self._parse_select_item())
        from_tables: List[ast.TableRef] = []
        if self.accept_keyword("FROM"):
            from_tables.append(self._parse_table_ref())
            while self.accept_op(","):
                from_tables.append(self._parse_table_ref())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: List[ast.Expr] = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        return ast.SelectStmt(
            select_items=items,
            from_tables=from_tables,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        if self.at_op("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # t.* form
        if (
            self.peek().kind == IDENT
            and self.peek(1).kind == OP
            and self.peek(1).text == "."
            and self.peek(2).kind == OP
            and self.peek(2).text == "*"
        ):
            table = self.advance().text
            self.advance()  # .
            self.advance()  # *
            return ast.SelectItem(ast.Star(table))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        elif self.peek().kind == IDENT and self.peek().upper() not in RESERVED:
            alias = self.advance().text
        return ast.SelectItem(expr, alias)

    def _parse_order_by(self) -> List[ast.OrderItem]:
        items: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expr()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                items.append(ast.OrderItem(expr, ascending))
                if not self.accept_op(","):
                    break
        return items

    def _parse_limit_offset(self) -> Tuple[Optional[int], Optional[int]]:
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self._parse_int("LIMIT")
        if self.accept_keyword("OFFSET"):
            offset = self._parse_int("OFFSET")
        return limit, offset

    def _parse_int(self, clause: str) -> int:
        tok = self.peek()
        if tok.kind != NUMBER or "." in tok.text:
            raise self.error(f"{clause} expects an integer")
        self.advance()
        return int(tok.text)

    # -- table references --------------------------------------------------------

    def _parse_table_ref(self) -> ast.TableRef:
        ref = self._parse_table_primary()
        while True:
            if self.at_keyword("JOIN", "INNER"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                right = self._parse_table_primary()
                self.expect_keyword("ON")
                condition = self.parse_expr()
                ref = ast.Join("INNER", ref, right, condition)
            elif self.at_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                right = self._parse_table_primary()
                self.expect_keyword("ON")
                condition = self.parse_expr()
                ref = ast.Join("LEFT", ref, right, condition)
            elif self.at_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self._parse_table_primary()
                ref = ast.Join("INNER", ref, right, None)
            else:
                return ref

    def _parse_table_primary(self) -> ast.TableRef:
        if self.at_op("("):
            self.advance()
            if self.at_keyword("SELECT") or self.at_op("("):
                subquery = self.parse_query()
                self.expect_op(")")
                self.accept_keyword("AS")
                alias = self.expect_ident("derived-table alias")
                return ast.DerivedTable(subquery, alias)
            ref = self._parse_table_ref()
            self.expect_op(")")
            return ref
        name = self.expect_ident("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        elif self.peek().kind == IDENT and self.peek().upper() not in RESERVED:
            alias = self.advance().text
        return ast.NamedTable(name, alias)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while True:
            if self.at_op("=", "<>", "!=", "<", "<=", ">", ">="):
                op = self.advance().text
                if op == "!=":
                    op = "<>"
                right = self._parse_additive()
                left = ast.BinaryOp(op, left, right)
                continue
            if self.at_keyword("IS"):
                self.advance()
                negated = self.accept_keyword("NOT")
                self.expect_keyword("NULL")
                left = ast.IsNull(left, negated)
                continue
            negated = False
            save = self.pos
            if self.at_keyword("NOT"):
                self.advance()
                if self.at_keyword("IN", "BETWEEN", "LIKE"):
                    negated = True
                else:
                    self.pos = save
                    return left
            if self.accept_keyword("IN"):
                left = self._parse_in(left, negated)
                continue
            if self.accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self.expect_keyword("AND")
                high = self._parse_additive()
                left = ast.Between(left, low, high, negated)
                continue
            if self.accept_keyword("LIKE"):
                pattern = self._parse_additive()
                node: ast.Expr = ast.BinaryOp("LIKE", left, pattern)
                if negated:
                    node = ast.UnaryOp("NOT", node)
                left = node
                continue
            return left

    def _parse_in(self, operand: ast.Expr, negated: bool) -> ast.Expr:
        self.expect_op("(")
        if self.at_keyword("SELECT") or self.at_op("("):
            subquery = self.parse_query()
            self.expect_op(")")
            return ast.InSubquery(operand, subquery, negated)
        items = [self.parse_expr()]
        while self.accept_op(","):
            items.append(self.parse_expr())
        self.expect_op(")")
        return ast.InList(operand, items, negated)

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.at_op("+", "-", "||"):
            op = self.advance().text
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self.at_op("*", "/", "%"):
            op = self.advance().text
            right = self._parse_unary()
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.at_op("-"):
            self.advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.at_op("+"):
            self.advance()
            return self._parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == NUMBER:
            self.advance()
            if "." in tok.text or "e" in tok.text.lower():
                return ast.Literal(float(tok.text))
            return ast.Literal(int(tok.text))
        if tok.kind == STRING:
            self.advance()
            return ast.Literal(tok.text)
        if tok.kind == OP and tok.text == "?":
            self.advance()
            param = ast.Parameter(self._param_count)
            self._param_count += 1
            return param
        if tok.kind == OP and tok.text == "(":
            self.advance()
            if self.at_keyword("SELECT") or (
                self.at_op("(") and self._lookahead_is_query()
            ):
                subquery = self.parse_query()
                self.expect_op(")")
                return ast.ScalarSubquery(subquery)
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if tok.kind == IDENT:
            upper = tok.upper()
            if upper == "NULL":
                self.advance()
                return ast.Literal(None)
            if upper == "TRUE":
                self.advance()
                return ast.Literal(True)
            if upper == "FALSE":
                self.advance()
                return ast.Literal(False)
            if upper == "EXISTS":
                self.advance()
                self.expect_op("(")
                subquery = self.parse_query()
                self.expect_op(")")
                return ast.Exists(subquery)
            if upper == "CASE":
                return self._parse_case()
            if upper == "CAST":
                return self._parse_cast()
            # function call?
            if self.peek(1).kind == OP and self.peek(1).text == "(":
                if upper in ast.FuncCall.AGGREGATES or upper in _SCALAR_FUNCS:
                    return self._parse_func_call()
            return self._parse_column_ref()
        raise self.error("expected an expression")

    def _lookahead_is_query(self) -> bool:
        """After '(' we may see '((...) UNION ...)': scan for SELECT."""
        depth = 0
        pos = self.pos
        while pos < len(self.toks):
            tok = self.toks[pos]
            if tok.kind == OP and tok.text == "(":
                depth += 1
            elif tok.kind == OP and tok.text == ")":
                if depth == 0:
                    return False
                depth -= 1
            elif tok.kind == IDENT and tok.upper() == "SELECT":
                return True
            elif tok.kind != OP:
                return False
            pos += 1
        return False

    def _parse_func_call(self) -> ast.Expr:
        name = self.advance().upper()
        self.expect_op("(")
        if self.at_op("*"):
            self.advance()
            self.expect_op(")")
            return ast.FuncCall(name, [], star=True)
        distinct = self.accept_keyword("DISTINCT")
        args: List[ast.Expr] = []
        if not self.at_op(")"):
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
        self.expect_op(")")
        return ast.FuncCall(name, args, distinct=distinct)

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        operand: Optional[ast.Expr] = None
        if not self.at_keyword("WHEN"):
            operand = self.parse_expr()
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            if operand is not None:
                cond = ast.BinaryOp("=", operand, cond)
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((cond, result))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_result = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return ast.Case(whens, else_result)

    def _parse_cast(self) -> ast.Expr:
        """CAST(expr AS TYPE) — evaluated as a scalar function."""
        self.expect_keyword("CAST")
        self.expect_op("(")
        expr = self.parse_expr()
        self.expect_keyword("AS")
        type_name = self.expect_ident("type name").upper()
        if self.accept_op("("):
            self._parse_int("type size")
            self.expect_op(")")
        self.expect_op(")")
        return ast.FuncCall("CAST_" + type_name, [expr])

    def _parse_column_ref(self) -> ast.Expr:
        first = self.expect_ident("column name")
        if self.at_op(".") and self.peek(1).kind == IDENT:
            self.advance()
            second = self.expect_ident("column name")
            return ast.ColumnRef(first, second)
        return ast.ColumnRef(None, first)

    # -- DML --------------------------------------------------------------------

    def parse_insert(self) -> ast.InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident("table name")
        columns: Optional[List[str]] = None
        if self.at_op("(") :
            self.advance()
            columns = [self.expect_ident("column name")]
            while self.accept_op(","):
                columns.append(self.expect_ident("column name"))
            self.expect_op(")")
        if self.accept_keyword("VALUES"):
            rows: List[List[ast.Expr]] = []
            while True:
                self.expect_op("(")
                row = [self.parse_expr()]
                while self.accept_op(","):
                    row.append(self.parse_expr())
                self.expect_op(")")
                rows.append(row)
                if not self.accept_op(","):
                    break
            return ast.InsertStmt(table, columns, rows=rows)
        select = self.parse_query()
        return ast.InsertStmt(table, columns, select=select)

    def parse_update(self) -> ast.UpdateStmt:
        self.expect_keyword("UPDATE")
        table = self.expect_ident("table name")
        self.expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            column = self.expect_ident("column name")
            self.expect_op("=")
            assignments.append((column, self.parse_expr()))
            if not self.accept_op(","):
                break
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.UpdateStmt(table, assignments, where)

    def parse_delete(self) -> ast.DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident("table name")
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.DeleteStmt(table, where)

    # -- DDL --------------------------------------------------------------------

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._parse_create_table()
        unique = self.accept_keyword("UNIQUE")
        if self.accept_keyword("INDEX"):
            return self._parse_create_index(unique)
        if unique:
            raise self.error("expected INDEX after UNIQUE")
        if self.accept_keyword("VIEW"):
            return self._parse_create_view()
        raise self.error("expected TABLE, INDEX, or VIEW")

    def _parse_create_table(self) -> ast.CreateTableStmt:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident("table name")
        self.expect_op("(")
        columns = [self._parse_column_def()]
        while self.accept_op(","):
            columns.append(self._parse_column_def())
        self.expect_op(")")
        return ast.CreateTableStmt(name, columns, if_not_exists)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident("column name")
        type_name = self.expect_ident("type name")
        size = None
        if self.accept_op("("):
            size = self._parse_int("type size")
            self.expect_op(")")
        column = ast.ColumnDef(name, type_name, size)
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                column.primary_key = True
                column.not_null = True
            elif self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                column.not_null = True
            elif self.accept_keyword("REFERENCES"):
                ref_table = self.expect_ident("referenced table")
                self.expect_op("(")
                ref_column = self.expect_ident("referenced column")
                self.expect_op(")")
                column.references = (ref_table.upper(), ref_column)
            else:
                return column

    def _parse_create_index(self, unique: bool) -> ast.CreateIndexStmt:
        name = self.expect_ident("index name")
        self.expect_keyword("ON")
        table = self.expect_ident("table name")
        self.expect_op("(")
        columns = [self.expect_ident("column name")]
        while self.accept_op(","):
            columns.append(self.expect_ident("column name"))
        self.expect_op(")")
        kind = "btree"
        if self.accept_keyword("USING"):
            kind_name = self.expect_ident("index kind").upper()
            if kind_name not in ("BTREE", "HASH"):
                raise self.error("index kind must be BTREE or HASH")
            kind = kind_name.lower()
        return ast.CreateIndexStmt(name, table, columns, unique, kind)

    def _parse_create_view(self) -> ast.CreateViewStmt:
        name = self.expect_ident("view name")
        self.expect_keyword("AS")
        start = self.peek()
        query = self.parse_query()
        sql_text = self.source[start.column - 1 :] if start.line == 1 else ""
        return ast.CreateViewStmt(name, query, sql_text or query.to_sql())

    def parse_drop(self) -> ast.DropStmt:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            kind = "TABLE"
        elif self.accept_keyword("VIEW"):
            kind = "VIEW"
        elif self.accept_keyword("INDEX"):
            kind = "INDEX"
        else:
            raise self.error("expected TABLE, VIEW, or INDEX")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.expect_ident("name")
        table = None
        if kind == "INDEX" and self.accept_keyword("ON"):
            table = self.expect_ident("table name")
        return ast.DropStmt(kind, name, if_exists, table)


def parse_sql(source: str) -> ast.Statement:
    """Parse exactly one statement (a trailing semicolon is allowed)."""
    parser = SQLParser(source)
    statements = parser.parse_statements()
    if len(statements) != 1:
        raise ParseError(f"expected one statement, found {len(statements)}")
    return statements[0]


def parse_statements(source: str) -> List[ast.Statement]:
    """Parse a semicolon-separated batch of statements."""
    return SQLParser(source).parse_statements()
