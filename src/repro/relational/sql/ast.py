"""Abstract syntax trees for the SQL dialect.

Plain dataclasses; every node knows how to render itself back to SQL text
(``to_sql``), which the XNF semantic rewrite uses to synthesise the per-node
and per-edge queries it hands to the relational engine — the same "translate
to a form very close to the standard SQL" step the paper describes in
section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union


# ===========================================================================
# Expressions
# ===========================================================================


class Expr:
    """Base class for expression nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass
class Literal(Expr):
    value: Any  # int, float, str, bool, or None

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass
class Parameter(Expr):
    """A bind parameter: ``?`` in SQL text, or a literal lifted out of a
    statement by the plan-cache normalizer.

    At execution time the compiled plan reads slot ``index`` of its
    parameter vector, so structurally identical statements that differ only
    in constants share one compiled plan.
    """

    index: int

    def to_sql(self) -> str:
        return f"?{self.index}"


@dataclass
class ColumnRef(Expr):
    table: Optional[str]
    column: str

    def to_sql(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list."""

    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass
class BinaryOp(Expr):
    op: str  # AND OR = <> < <= > >= + - * / % || LIKE
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass
class UnaryOp(Expr):
    op: str  # NOT, -
    operand: Expr

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"({self.op}{self.operand.to_sql()})"


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return (
            f"({self.operand.to_sql()} {not_kw}BETWEEN "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass
class InList(Expr):
    operand: Expr
    items: List[Expr]
    negated: bool = False

    def to_sql(self) -> str:
        not_kw = "NOT " if self.negated else ""
        inner = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {not_kw}IN ({inner}))"


@dataclass
class InSubquery(Expr):
    operand: Expr
    subquery: "Query"
    negated: bool = False

    def to_sql(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {not_kw}IN ({self.subquery.to_sql()}))"


@dataclass
class Exists(Expr):
    subquery: "Query"
    negated: bool = False

    def to_sql(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"({not_kw}EXISTS ({self.subquery.to_sql()}))"


@dataclass
class ScalarSubquery(Expr):
    subquery: "Query"

    def to_sql(self) -> str:
        return f"({self.subquery.to_sql()})"


@dataclass
class FuncCall(Expr):
    """Function application; covers aggregates and scalar functions."""

    name: str  # upper-cased
    args: List[Expr]
    distinct: bool = False
    star: bool = False  # COUNT(*)

    AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES

    def to_sql(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(arg.to_sql() for arg in self.args)
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.name}({distinct}{inner})"


@dataclass
class Case(Expr):
    whens: List[Tuple[Expr, Expr]]
    else_result: Optional[Expr] = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {result.to_sql()}")
        if self.else_result is not None:
            parts.append(f"ELSE {self.else_result.to_sql()}")
        parts.append("END")
        return " ".join(parts)


# ===========================================================================
# Table references
# ===========================================================================


class TableRef:
    """Base class for FROM-clause items."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass
class NamedTable(TableRef):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass
class DerivedTable(TableRef):
    subquery: "Query"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias

    def to_sql(self) -> str:
        return f"({self.subquery.to_sql()}) AS {self.alias}"


@dataclass
class Join(TableRef):
    kind: str  # INNER or LEFT
    left: TableRef
    right: TableRef
    condition: Optional[Expr]

    def to_sql(self) -> str:
        cond = f" ON {self.condition.to_sql()}" if self.condition else ""
        return f"({self.left.to_sql()} {self.kind} JOIN {self.right.to_sql()}{cond})"


# ===========================================================================
# Queries
# ===========================================================================


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expr.to_sql()} AS {self.alias}"
        return self.expr.to_sql()


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass
class SelectStmt:
    """A single SELECT block."""

    select_items: List[SelectItem]
    from_tables: List[TableRef] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.select_items))
        if self.from_tables:
            parts.append("FROM " + ", ".join(t.to_sql() for t in self.from_tables))
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass
class SetOpStmt:
    """UNION / INTERSECT / EXCEPT combination of two queries."""

    op: str  # UNION, INTERSECT, EXCEPT
    all: bool
    left: "Query"
    right: "Query"
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None

    def to_sql(self) -> str:
        all_kw = " ALL" if self.all else ""
        text = f"({self.left.to_sql()}) {self.op}{all_kw} ({self.right.to_sql()})"
        if self.order_by:
            text += " ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        if self.offset is not None:
            text += f" OFFSET {self.offset}"
        return text


Query = Union[SelectStmt, SetOpStmt]


# ===========================================================================
# DML
# ===========================================================================


@dataclass
class InsertStmt:
    table: str
    columns: Optional[List[str]]
    rows: Optional[List[List[Expr]]] = None  # VALUES form
    select: Optional[Query] = None  # INSERT ... SELECT form

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.select is not None:
            return f"INSERT INTO {self.table}{cols} {self.select.to_sql()}"
        rows_sql = ", ".join(
            "(" + ", ".join(e.to_sql() for e in row) + ")" for row in self.rows or []
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows_sql}"


@dataclass
class UpdateStmt:
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{col} = {expr.to_sql()}" for col, expr in self.assignments)
        text = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            text += f" WHERE {self.where.to_sql()}"
        return text


@dataclass
class DeleteStmt:
    table: str
    where: Optional[Expr] = None

    def to_sql(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where.to_sql()}"
        return text


# ===========================================================================
# DDL and session statements
# ===========================================================================


@dataclass
class ColumnDef:
    name: str
    type_name: str
    size: Optional[int] = None
    not_null: bool = False
    primary_key: bool = False
    references: Optional[Tuple[str, str]] = None


@dataclass
class CreateTableStmt:
    name: str
    columns: List[ColumnDef]
    if_not_exists: bool = False


@dataclass
class CreateIndexStmt:
    name: str
    table: str
    columns: List[str]
    unique: bool = False
    kind: str = "btree"  # or "hash"


@dataclass
class CreateViewStmt:
    name: str
    query: Query
    sql_text: str = ""


@dataclass
class DropStmt:
    kind: str  # TABLE, INDEX, VIEW
    name: str
    if_exists: bool = False
    table: Optional[str] = None  # for DROP INDEX ... ON table


@dataclass
class ExplainStmt:
    """EXPLAIN [ANALYZE] <query>: the physical plan as one text column.

    With ``analyze`` the query is also *executed* under operator-level
    instrumentation and the plan is annotated with actual row counts and
    cumulative times (plus the pipeline's per-stage timings).
    """

    query: "Query"
    analyze: bool = False


@dataclass
class AnalyzeStmt:
    table: Optional[str] = None  # None = all tables


@dataclass
class BeginStmt:
    pass


@dataclass
class CommitStmt:
    pass


@dataclass
class RollbackStmt:
    pass


Statement = Union[
    SelectStmt,
    SetOpStmt,
    InsertStmt,
    UpdateStmt,
    DeleteStmt,
    CreateTableStmt,
    CreateIndexStmt,
    CreateViewStmt,
    DropStmt,
    ExplainStmt,
    AnalyzeStmt,
    BeginStmt,
    CommitStmt,
    RollbackStmt,
]


# ===========================================================================
# Tree utilities (used by rewrite, optimizer, and the XNF compiler)
# ===========================================================================


def walk_expr(expr: Expr):
    """Yield *expr* and all sub-expressions, depth-first (not subqueries)."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, IsNull):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Between):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.low)
        yield from walk_expr(expr.high)
    elif isinstance(expr, InList):
        yield from walk_expr(expr.operand)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, InSubquery):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, Case):
        for cond, result in expr.whens:
            yield from walk_expr(cond)
            yield from walk_expr(result)
        if expr.else_result is not None:
            yield from walk_expr(expr.else_result)


def column_refs(expr: Expr) -> List[ColumnRef]:
    """All column references in *expr* (excluding inside subqueries)."""
    return [node for node in walk_expr(expr) if isinstance(node, ColumnRef)]


def contains_aggregate(expr: Expr) -> bool:
    """True if *expr* contains an aggregate call outside subqueries."""
    return any(
        isinstance(node, FuncCall) and node.is_aggregate for node in walk_expr(expr)
    )


def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Split a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(predicates: Sequence[Expr]) -> Optional[Expr]:
    """AND a list of predicates back together (None for the empty list)."""
    result: Optional[Expr] = None
    for pred in predicates:
        result = pred if result is None else BinaryOp("AND", result, pred)
    return result
