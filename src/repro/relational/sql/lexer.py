"""Tokenizer shared by the SQL and XNF parsers.

Produces a flat token stream; keywords are not distinguished from
identifiers here (parsers match on upper-cased identifier text), which keeps
the lexer reusable for XNF's extra keywords (OUT, RELATE, TAKE, ...).
The only XNF-specific lexeme is the ``->`` path operator, emitted as one
token so path expressions parse unambiguously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ParseError

#: token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
EOF = "EOF"

#: multi-character operators, longest first
_MULTI_OPS = ["->", "<=", ">=", "<>", "!=", "||"]
_SINGLE_OPS = set("+-*/%(),.;=<>[]?")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def upper(self) -> str:
        return self.text.upper()


class Lexer:
    """Single-pass tokenizer with position tracking for error messages."""

    def __init__(self, source: str, hyphen_idents: bool = False):
        """*hyphen_idents* allows ``ALL-DEPS``-style names (paper notation).

        The XNF parser turns this on; plain SQL keeps it off so ``a-b``
        stays a subtraction.  Inside XNF text, write subtraction with
        spaces (``a - b``).
        """
        self.source = source
        self.hyphen_idents = hyphen_idents
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> List[Token]:
        result = list(self._iter_tokens())
        result.append(Token(EOF, "", self.line, self.column))
        return result

    def _iter_tokens(self) -> Iterator[Token]:
        src = self.source
        length = len(src)
        while self.pos < length:
            ch = src[self.pos]
            if ch in " \t\r\n":
                self._advance(ch)
                continue
            if ch == "-" and self._peek(1) == "-":
                self._skip_line_comment()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue
            if ch.isalpha() or ch == "_":
                yield self._identifier()
                continue
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._number()
                continue
            if ch == "'":
                yield self._string()
                continue
            if ch == '"':
                yield self._quoted_identifier()
                continue
            op = self._operator()
            if op is not None:
                yield op
                continue
            raise ParseError(f"unexpected character {ch!r}", self.line, self.column)

    # -- scanners ---------------------------------------------------------------

    def _identifier(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        src = self.source
        while self.pos < len(src) and (src[self.pos].isalnum() or src[self.pos] in "_$#"):
            self._advance(src[self.pos])
        # Allow hyphenated identifiers like ALL-DEPS (the paper's view names)
        # when the hyphen is directly between identifier characters.
        while (
            self.hyphen_idents
            and self.pos + 1 < len(src)
            and src[self.pos] == "-"
            and (src[self.pos + 1].isalnum() or src[self.pos + 1] == "_")
        ):
            self._advance("-")
            while self.pos < len(src) and (
                src[self.pos].isalnum() or src[self.pos] in "_$#"
            ):
                self._advance(src[self.pos])
        return Token(IDENT, src[start : self.pos], line, column)

    def _number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        src = self.source
        seen_dot = False
        while self.pos < len(src):
            ch = src[self.pos]
            if ch.isdigit():
                self._advance(ch)
            elif ch == "." and not seen_dot and self._peek(1) != ".":
                seen_dot = True
                self._advance(ch)
            elif ch in "eE" and self.pos + 1 < len(src) and (
                src[self.pos + 1].isdigit()
                or (src[self.pos + 1] in "+-" and self._peek(2).isdigit())
            ):
                self._advance(ch)
                if src[self.pos] in "+-":
                    self._advance(src[self.pos])
                seen_dot = True  # exponent implies float
            else:
                break
        return Token(NUMBER, src[start : self.pos], line, column)

    def _string(self) -> Token:
        line, column = self.line, self.column
        self._advance("'")
        src = self.source
        chars: List[str] = []
        while True:
            if self.pos >= len(src):
                raise ParseError("unterminated string literal", line, column)
            ch = src[self.pos]
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    chars.append("'")
                    self._advance("'")
                    self._advance("'")
                    continue
                self._advance("'")
                break
            chars.append(ch)
            self._advance(ch)
        return Token(STRING, "".join(chars), line, column)

    def _quoted_identifier(self) -> Token:
        line, column = self.line, self.column
        self._advance('"')
        src = self.source
        start = self.pos
        while self.pos < len(src) and src[self.pos] != '"':
            self._advance(src[self.pos])
        if self.pos >= len(src):
            raise ParseError("unterminated quoted identifier", line, column)
        text = src[start : self.pos]
        self._advance('"')
        return Token(IDENT, text, line, column)

    def _operator(self) -> Optional[Token]:
        line, column = self.line, self.column
        src = self.source
        for op in _MULTI_OPS:
            if src.startswith(op, self.pos):
                for ch in op:
                    self._advance(ch)
                return Token(OP, op, line, column)
        ch = src[self.pos]
        if ch in _SINGLE_OPS:
            self._advance(ch)
            return Token(OP, ch, line, column)
        return None

    # -- helpers ----------------------------------------------------------------

    def _peek(self, offset: int) -> str:
        pos = self.pos + offset
        if pos < len(self.source):
            return self.source[pos]
        return ""

    def _advance(self, ch: str) -> None:
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1

    def _skip_line_comment(self) -> None:
        src = self.source
        while self.pos < len(src) and src[self.pos] != "\n":
            self._advance(src[self.pos])

    def _skip_block_comment(self) -> None:
        line, column = self.line, self.column
        self._advance("/")
        self._advance("*")
        src = self.source
        while self.pos < len(src):
            if src[self.pos] == "*" and self._peek(1) == "/":
                self._advance("*")
                self._advance("/")
                return
            self._advance(src[self.pos])
        raise ParseError("unterminated block comment", line, column)


def tokenize(source: str, hyphen_idents: bool = False) -> List[Token]:
    """Convenience wrapper: tokenize *source* fully."""
    return Lexer(source, hyphen_idents=hyphen_idents).tokens()
