"""SQL front end: lexer, AST and parser for the engine's SQL dialect.

The dialect covers what the paper's translation target needs: SELECT with
joins, subqueries (EXISTS / IN / scalar), GROUP BY / HAVING, ORDER BY /
LIMIT, set operations, DML, and DDL including views.  The lexer is shared
with the XNF language parser (:mod:`repro.xnf.lang`), which adds the
``OUT OF`` / ``RELATE`` / ``TAKE`` constructs and the ``->`` path operator
on top.
"""

from repro.relational.sql.lexer import Lexer, Token
from repro.relational.sql.parser import parse_sql, parse_statements, SQLParser
from repro.relational.sql import ast

__all__ = ["Lexer", "Token", "parse_sql", "parse_statements", "SQLParser", "ast"]
