"""Query Graph Model (QGM).

Starburst's internal query representation, as sketched in section 4.3 of the
paper: "Queries are represented as a series of high level operators (e.g.
SELECT, GROUP BY, UNION ...) on either base tables or derived tables.  An
operator consists of a head and a body: the head describes the output table
and the body shows how this table is derived from other tables".

We model boxes (:class:`BaseTableBox`, :class:`SelectBox`,
:class:`GroupByBox`, :class:`SetOpBox`, :class:`ValuesBox`) connected by
:class:`Quantifier` edges.  The XNF layer adds its own
:class:`repro.xnf.semantic_rewrite.XNFBox` which the *XNF semantic rewrite*
step lowers to the plain boxes below — enabling full reuse of the rewrite
engine, optimizer and executor, the paper's main implementation claim.
"""

from repro.relational.qgm.model import (
    Box,
    BaseTableBox,
    SelectBox,
    GroupByBox,
    SetOpBox,
    ValuesBox,
    Quantifier,
    HeadColumn,
    QGMColumnRef,
    OuterRef,
    SubqueryExpr,
)
from repro.relational.qgm.build import QGMBuilder

__all__ = [
    "Box",
    "BaseTableBox",
    "SelectBox",
    "GroupByBox",
    "SetOpBox",
    "ValuesBox",
    "Quantifier",
    "HeadColumn",
    "QGMColumnRef",
    "OuterRef",
    "SubqueryExpr",
    "QGMBuilder",
]
