"""AST → QGM translation: scoping, name resolution, view expansion.

The builder walks a parsed query and produces a box tree.  Views are merged
structurally (a view reference becomes a quantifier over the view's own box
tree) — the rewrite engine may later inline them.  Correlated column
references resolve through a scope chain to :class:`OuterRef` nodes, which
the executor evaluates against its environment stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, TypeCheckError
from repro.relational.catalog import Catalog
from repro.relational.qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    HeadColumn,
    OuterRef,
    QGMColumnRef,
    Quantifier,
    SelectBox,
    SetOpBox,
    SubqueryExpr,
    TopBox,
    walk_resolved,
)
from repro.relational.sql import ast


class _Scope:
    """One name-resolution scope: the quantifiers of a box being built."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.quantifiers: Dict[str, List[str]] = {}  # name -> columns

    def add(self, name: str, columns: List[str]) -> None:
        if name in self.quantifiers:
            raise CatalogError(f"duplicate table alias {name!r}")
        self.quantifiers[name] = columns

    def resolve(self, table: Optional[str], column: str) -> Tuple[str, str, int]:
        """Resolve to (quantifier, column, depth). depth 0 = current scope."""
        depth = 0
        scope: Optional[_Scope] = self
        while scope is not None:
            found = scope._resolve_local(table, column)
            if found is not None:
                return found[0], found[1], depth
            scope = scope.parent
            depth += 1
        where = f"{table}.{column}" if table else column
        raise CatalogError(f"cannot resolve column reference {where!r}")

    def _resolve_local(
        self, table: Optional[str], column: str
    ) -> Optional[Tuple[str, str]]:
        if table is not None:
            for name, columns in self.quantifiers.items():
                if name.upper() == table.upper():
                    for col in columns:
                        if col.upper() == column.upper():
                            return name, col
                    raise CatalogError(
                        f"table {table!r} has no column {column!r}"
                    )
            return None
        matches = []
        for name, columns in self.quantifiers.items():
            for col in columns:
                if col.upper() == column.upper():
                    matches.append((name, col))
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column reference {column!r}")
        return matches[0] if matches else None


class QGMBuilder:
    """Builds QGM boxes from parsed queries against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- public entry points ----------------------------------------------------

    def build_query(self, query: ast.Query, scope: Optional[_Scope] = None) -> Box:
        box = self._build_query_body(query, scope)
        order_by = getattr(query, "order_by", [])
        limit = getattr(query, "limit", None)
        offset = getattr(query, "offset", None)
        if order_by or limit is not None or offset is not None:
            resolved = self._resolve_order_by(order_by, box, scope)
            hidden = getattr(box, "hidden_sort_columns", 0)
            top = TopBox(box, resolved, limit, offset)
            if hidden:
                top.visible = len(box.output_columns()) - hidden
            box = top
        return box

    def resolve_standalone_predicate(
        self,
        expr: ast.Expr,
        quantifier: str,
        columns: Sequence[str],
        scope: Optional[_Scope] = None,
    ) -> ast.Expr:
        """Resolve a bare predicate over one named tuple variable.

        Used by the engine for UPDATE/DELETE WHERE clauses and by the XNF
        compiler for SUCH THAT predicates.
        """
        local = _Scope(scope)
        local.add(quantifier, list(columns))
        return self._resolve_expr(expr, local)

    # -- query bodies --------------------------------------------------------------

    def _build_query_body(self, query: ast.Query, scope: Optional[_Scope]) -> Box:
        if isinstance(query, ast.SetOpStmt):
            left = self._build_query_body(query.left, scope)
            right = self._build_query_body(query.right, scope)
            if len(left.output_columns()) != len(right.output_columns()):
                raise TypeCheckError(
                    f"{query.op} arms have different column counts"
                )
            return SetOpBox(query.op, query.all, left, right)
        return self._build_select(query, scope)

    def _build_select(self, stmt: ast.SelectStmt, outer: Optional[_Scope]) -> Box:
        box = SelectBox()
        scope = _Scope(outer)
        # FROM clause: register quantifiers; joins add predicates.
        for table_ref in stmt.from_tables:
            self._add_table_ref(box, scope, table_ref)
        if stmt.where is not None:
            box.predicates.extend(
                self._resolve_expr(conj, scope)
                for conj in ast.conjuncts(stmt.where)
            )
        # Expand stars and resolve the head.
        items = self._expand_stars(stmt.select_items, scope)
        needs_group = bool(stmt.group_by) or any(
            ast.contains_aggregate(item.expr) for item in items
        )
        if stmt.having is not None and not needs_group:
            needs_group = True
        if not needs_group:
            used = set()
            for pos, item in enumerate(items):
                name = self._head_name(item, pos, used)
                box.head.append(
                    HeadColumn(name, self._resolve_expr(item.expr, scope))
                )
            box.distinct = stmt.distinct
            box.sort_scope = scope  # lets ORDER BY reach FROM-clause columns
            return box
        return self._build_group_by(stmt, items, box, scope)

    def _build_group_by(
        self,
        stmt: ast.SelectStmt,
        items: List[ast.SelectItem],
        spj: SelectBox,
        scope: _Scope,
    ) -> Box:
        """Wrap the SPJ box in a GroupByBox.

        The SPJ box outputs every (quantifier, column) pair flattened to
        ``q__col`` names; group keys, aggregate arguments and HAVING are then
        re-expressed over the single input quantifier ``g``.
        """
        flat_names: Dict[Tuple[str, str], str] = {}
        for quant in spj.quantifiers:
            for col in quant.columns():
                flat = f"{quant.name}__{col}"
                flat_names[(quant.name, col)] = flat
                spj.head.append(HeadColumn(flat, QGMColumnRef(quant.name, col)))

        group_box = GroupByBox()
        group_box.input = Quantifier("g", spj)

        def reroute(expr: ast.Expr) -> ast.Expr:
            resolved = self._resolve_expr(expr, scope)
            return _remap_to_quantifier(resolved, flat_names, "g")

        group_box.group_keys = [reroute(key) for key in stmt.group_by]
        group_key_sql = {key.to_sql() for key in group_box.group_keys}
        used: set = set()
        group_box.raw_head_sql = []  # pre-resolution text, for ORDER BY
        for pos, item in enumerate(items):
            name = self._head_name(item, pos, used)
            resolved = reroute(item.expr)
            self._check_group_expr(resolved, group_key_sql, name)
            group_box.head.append(HeadColumn(name, resolved))
            group_box.raw_head_sql.append(item.expr.to_sql())
        if stmt.having is not None:
            for conj in ast.conjuncts(stmt.having):
                resolved = reroute(conj)
                self._check_group_expr(resolved, group_key_sql, "HAVING")
                group_box.having.append(resolved)
        if stmt.distinct:
            distinct_box = SelectBox("distinct")
            quant = Quantifier("d", group_box)
            distinct_box.quantifiers.append(quant)
            for col in group_box.output_columns():
                distinct_box.head.append(HeadColumn(col, QGMColumnRef("d", col)))
            distinct_box.distinct = True
            return distinct_box
        return group_box

    def _check_group_expr(
        self, expr: ast.Expr, group_key_sql: set, context: str
    ) -> None:
        """Every non-aggregate column use must appear in the GROUP BY keys."""
        if expr.to_sql() in group_key_sql:
            return
        if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
            return
        if isinstance(expr, QGMColumnRef):
            raise TypeCheckError(
                f"column {expr.to_sql()} in {context} is neither grouped "
                "nor aggregated"
            )
        for child in _direct_children(expr):
            self._check_group_expr(child, group_key_sql, context)

    # -- FROM-clause handling ------------------------------------------------------

    def _add_table_ref(
        self, box: SelectBox, scope: _Scope, ref: ast.TableRef
    ) -> None:
        if isinstance(ref, ast.NamedTable):
            self._add_named_table(box, scope, ref)
        elif isinstance(ref, ast.DerivedTable):
            child = self.build_query(ref.subquery, scope)
            quant = Quantifier(ref.alias, child)
            box.quantifiers.append(quant)
            scope.add(ref.alias, child.output_columns())
        elif isinstance(ref, ast.Join):
            self._add_join(box, scope, ref)
        else:  # pragma: no cover
            raise TypeCheckError(f"unsupported table reference {ref!r}")

    def _add_named_table(
        self, box: SelectBox, scope: _Scope, ref: ast.NamedTable
    ) -> None:
        view = self.catalog.get_view(ref.name)
        if view is not None:
            child = self.build_query(view.body, None)
            binding = ref.alias or ref.name
            box.quantifiers.append(Quantifier(binding, child))
            scope.add(binding, child.output_columns())
            return
        table = self.catalog.get_table(ref.name)
        child = BaseTableBox(table.name, table.column_names())
        binding = ref.alias or ref.name
        box.quantifiers.append(Quantifier(binding, child))
        scope.add(binding, child.columns)

    def _add_join(self, box: SelectBox, scope: _Scope, join: ast.Join) -> None:
        self._add_table_ref(box, scope, join.left)
        before = len(box.quantifiers)
        self._add_table_ref(box, scope, join.right)
        new_quants = box.quantifiers[before:]
        condition = (
            [
                self._resolve_expr(conj, scope)
                for conj in ast.conjuncts(join.condition)
            ]
            if join.condition is not None
            else []
        )
        if join.kind == "LEFT":
            if len(new_quants) != 1:
                raise TypeCheckError(
                    "LEFT JOIN right side must be a single table or subquery"
                )
            box.outer_joins.append((new_quants[0].name, condition))
        else:
            box.predicates.extend(condition)

    # -- head helpers -------------------------------------------------------------

    def _expand_stars(
        self, items: List[ast.SelectItem], scope: _Scope
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                table = item.expr.table
                for name, columns in scope.quantifiers.items():
                    if table is not None and name.upper() != table.upper():
                        continue
                    for col in columns:
                        expanded.append(
                            ast.SelectItem(ast.ColumnRef(name, col), None)
                        )
                if table is not None and not any(
                    name.upper() == table.upper() for name in scope.quantifiers
                ):
                    raise CatalogError(f"unknown table {table!r} in {table}.*")
            else:
                expanded.append(item)
        if not expanded:
            raise TypeCheckError("SELECT list is empty after * expansion")
        return expanded

    def _head_name(self, item: ast.SelectItem, pos: int, used: set) -> str:
        if item.alias:
            base = item.alias
        elif isinstance(item.expr, ast.ColumnRef):
            base = item.expr.column
        else:
            base = f"col{pos + 1}"
        name = base
        suffix = 1
        while name.upper() in used:
            suffix += 1
            name = f"{base}_{suffix}"
        used.add(name.upper())
        return name

    def _resolve_order_by(
        self,
        order_items: List[ast.OrderItem],
        box: Box,
        scope: Optional[_Scope],
    ) -> List[Tuple[ast.Expr, bool]]:
        """Resolve ORDER BY items.

        Resolution order follows SQL practice: 1-based positions, then the
        query's own output columns, then — for plain SELECT blocks — the
        FROM-clause scope, in which case a *hidden* head column is appended
        to carry the sort key (the planner trims it away after sorting).
        """
        columns = box.output_columns()
        sort_scope: Optional[_Scope] = getattr(box, "sort_scope", None)
        resolved: List[Tuple[ast.Expr, bool]] = []
        for item in order_items:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                pos = expr.value
                if not 1 <= pos <= len(columns):
                    raise TypeCheckError(f"ORDER BY position {pos} out of range")
                resolved.append(
                    (QGMColumnRef("__out__", columns[pos - 1]), item.ascending)
                )
                continue
            if isinstance(expr, ast.FuncCall) and isinstance(box, GroupByBox):
                # ORDER BY COUNT(*) etc.: match textually against the head
                # expressions of the grouping box.
                wanted = expr.to_sql()
                matched = False
                raw_sql = getattr(box, "raw_head_sql", [])
                for head_col, raw in zip(box.head, raw_sql):
                    if raw == wanted or head_col.expr.to_sql() == wanted:
                        resolved.append(
                            (
                                QGMColumnRef("__out__", head_col.name),
                                item.ascending,
                            )
                        )
                        matched = True
                        break
                if matched:
                    continue
            if isinstance(expr, ast.ColumnRef):
                match = [c for c in columns if c.upper() == expr.column.upper()]
                # Unqualified names always try the output first; qualified
                # names fall back to it when there is no FROM scope to
                # resolve against (e.g. ORDER BY d.dname after GROUP BY
                # d.dname, where the group key is an output column).
                if match and (expr.table is None or sort_scope is None):
                    resolved.append(
                        (QGMColumnRef("__out__", match[0]), item.ascending)
                    )
                    continue
            if sort_scope is not None and isinstance(box, SelectBox):
                if box.distinct:
                    raise TypeCheckError(
                        "ORDER BY column must appear in the SELECT list "
                        "when DISTINCT is used"
                    )
                inner = self._resolve_expr(expr, sort_scope)
                hidden = f"__sort_{len(box.head)}"
                box.head.append(HeadColumn(hidden, inner))
                box.hidden_sort_columns = (
                    getattr(box, "hidden_sort_columns", 0) + 1
                )
                resolved.append((QGMColumnRef("__out__", hidden), item.ascending))
                continue
            local = _Scope(None)
            local.add("__out__", list(columns))
            resolved.append((self._resolve_expr(expr, local), item.ascending))
        return resolved

    # -- expression resolution -------------------------------------------------------

    def _resolve_expr(self, expr: ast.Expr, scope: Optional[_Scope]) -> ast.Expr:
        if isinstance(expr, (ast.Literal, ast.Parameter)):
            return expr
        if isinstance(expr, ast.ColumnRef):
            if scope is None:
                raise CatalogError(
                    f"column reference {expr.to_sql()!r} outside any scope"
                )
            quant, column, depth = scope.resolve(expr.table, expr.column)
            if depth == 0:
                return QGMColumnRef(quant, column)
            return OuterRef(quant, column)
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self._resolve_expr(expr.left, scope),
                self._resolve_expr(expr.right, scope),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self._resolve_expr(expr.operand, scope))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self._resolve_expr(expr.operand, scope), expr.negated)
        if isinstance(expr, ast.Between):
            return ast.Between(
                self._resolve_expr(expr.operand, scope),
                self._resolve_expr(expr.low, scope),
                self._resolve_expr(expr.high, scope),
                expr.negated,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                self._resolve_expr(expr.operand, scope),
                [self._resolve_expr(item, scope) for item in expr.items],
                expr.negated,
            )
        if isinstance(expr, ast.InSubquery):
            sub_box = self.build_query(expr.subquery, scope)
            if len(sub_box.output_columns()) != 1:
                raise TypeCheckError("IN subquery must return one column")
            node = SubqueryExpr(
                "IN",
                sub_box,
                operand=self._resolve_expr(expr.operand, scope),
                negated=expr.negated,
            )
            node.correlated = _box_is_correlated(sub_box)
            return node
        if isinstance(expr, ast.Exists):
            sub_box = self.build_query(expr.subquery, scope)
            node = SubqueryExpr("EXISTS", sub_box, negated=expr.negated)
            node.correlated = _box_is_correlated(sub_box)
            return node
        if isinstance(expr, ast.ScalarSubquery):
            sub_box = self.build_query(expr.subquery, scope)
            if len(sub_box.output_columns()) != 1:
                raise TypeCheckError("scalar subquery must return one column")
            node = SubqueryExpr("SCALAR", sub_box)
            node.correlated = _box_is_correlated(sub_box)
            return node
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                expr.name,
                [self._resolve_expr(arg, scope) for arg in expr.args],
                distinct=expr.distinct,
                star=expr.star,
            )
        if isinstance(expr, ast.Case):
            return ast.Case(
                [
                    (
                        self._resolve_expr(cond, scope),
                        self._resolve_expr(result, scope),
                    )
                    for cond, result in expr.whens
                ],
                (
                    self._resolve_expr(expr.else_result, scope)
                    if expr.else_result is not None
                    else None
                ),
            )
        if isinstance(expr, (QGMColumnRef, OuterRef, SubqueryExpr)):
            return expr  # already resolved (XNF compiler path)
        raise TypeCheckError(f"unsupported expression {expr!r}")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _direct_children(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.IsNull):
        return [expr.operand]
    if isinstance(expr, ast.Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, ast.InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, ast.FuncCall):
        return list(expr.args)
    if isinstance(expr, ast.Case):
        children: List[ast.Expr] = []
        for cond, result in expr.whens:
            children.extend((cond, result))
        if expr.else_result is not None:
            children.append(expr.else_result)
        return children
    return []


def _remap_to_quantifier(
    expr: ast.Expr, flat_names: Dict[Tuple[str, str], str], quantifier: str
) -> ast.Expr:
    """Rewrite QGMColumnRef(q, c) to QGMColumnRef(quantifier, flat_name)."""
    if isinstance(expr, QGMColumnRef):
        flat = flat_names.get((expr.quantifier, expr.column))
        if flat is None:
            raise CatalogError(
                f"column {expr.to_sql()} not available after grouping"
            )
        return QGMColumnRef(quantifier, flat)
    if isinstance(expr, (ast.Literal, ast.Parameter, OuterRef, SubqueryExpr)):
        return expr
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _remap_to_quantifier(expr.left, flat_names, quantifier),
            _remap_to_quantifier(expr.right, flat_names, quantifier),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(
            expr.op, _remap_to_quantifier(expr.operand, flat_names, quantifier)
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(
            _remap_to_quantifier(expr.operand, flat_names, quantifier), expr.negated
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            _remap_to_quantifier(expr.operand, flat_names, quantifier),
            _remap_to_quantifier(expr.low, flat_names, quantifier),
            _remap_to_quantifier(expr.high, flat_names, quantifier),
            expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            _remap_to_quantifier(expr.operand, flat_names, quantifier),
            [_remap_to_quantifier(item, flat_names, quantifier) for item in expr.items],
            expr.negated,
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            [_remap_to_quantifier(arg, flat_names, quantifier) for arg in expr.args],
            distinct=expr.distinct,
            star=expr.star,
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            [
                (
                    _remap_to_quantifier(cond, flat_names, quantifier),
                    _remap_to_quantifier(result, flat_names, quantifier),
                )
                for cond, result in expr.whens
            ],
            (
                _remap_to_quantifier(expr.else_result, flat_names, quantifier)
                if expr.else_result is not None
                else None
            ),
        )
    raise TypeCheckError(f"unsupported expression in grouped query: {expr!r}")


def _box_is_correlated(box: Box) -> bool:
    """A box is correlated if any expression below it holds an OuterRef."""
    from repro.relational.qgm.model import (
        GroupByBox,
        SelectBox,
        SetOpBox,
        TopBox,
        ValuesBox,
    )

    def exprs_of(b: Box):
        if isinstance(b, SelectBox):
            for col in b.head:
                yield col.expr
            yield from b.predicates
            for _, preds in b.outer_joins:
                yield from preds
        elif isinstance(b, GroupByBox):
            for col in b.head:
                yield col.expr
            yield from b.group_keys
            yield from b.having
        elif isinstance(b, TopBox):
            for expr, _ in b.order_by:
                yield expr

    def visit(b: Box) -> bool:
        for expr in exprs_of(b):
            for node in walk_resolved(expr):
                if isinstance(node, OuterRef):
                    return True
                if isinstance(node, SubqueryExpr) and visit(node.box):
                    return True
        return any(visit(child) for child in b.children())

    return visit(box)
