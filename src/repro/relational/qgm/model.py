"""QGM box/quantifier data structures.

Resolved expressions reuse the SQL AST node classes, with two additions:

* :class:`QGMColumnRef` — a column reference bound to a quantifier of the
  enclosing box,
* :class:`OuterRef` — a correlated reference to a quantifier of an outer
  box (evaluated against the runtime environment stack), and
* :class:`SubqueryExpr` — an EXISTS / IN / scalar subquery whose body is
  itself a QGM box, executed as a (memoised when uncorrelated) subplan.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.relational.sql import ast

_box_ids = itertools.count(1)


@dataclass
class HeadColumn:
    """One output column of a box: a name and its defining expression."""

    name: str
    expr: ast.Expr


class Box:
    """Base class of all QGM boxes."""

    def __init__(self, name: str = ""):
        self.id = next(_box_ids)
        self.name = name or f"box{self.id}"

    #: Output column names, in order.
    def output_columns(self) -> List[str]:
        raise NotImplementedError

    def children(self) -> List["Box"]:
        return []

    def describe(self, indent: int = 0) -> str:
        """Human-readable tree dump (used by EXPLAIN and the pipeline demo)."""
        pad = "  " * indent
        lines = [f"{pad}{self!r}"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


class BaseTableBox(Box):
    """Leaf box over a catalog base table."""

    def __init__(self, table_name: str, columns: List[str]):
        super().__init__(f"base({table_name})")
        self.table_name = table_name
        self.columns = columns

    def output_columns(self) -> List[str]:
        return self.columns

    def __repr__(self) -> str:
        return f"BaseTable[{self.table_name}]"


@dataclass
class Quantifier:
    """A tuple variable ranging over another box.

    ``kind`` is ``'F'`` (ForEach — ordinary FROM item), matching the paper's
    QGM; existential quantification is represented by
    :class:`SubqueryExpr` predicates instead, mirroring how correlated
    subplans are executed.  ``preserved`` marks the row-preserving side of a
    left outer join.
    """

    name: str
    box: Box
    kind: str = "F"
    preserved: bool = False

    def columns(self) -> List[str]:
        return self.box.output_columns()


class SelectBox(Box):
    """Select-project-join box: quantifiers + conjunctive predicates + head."""

    def __init__(self, name: str = ""):
        super().__init__(name or "select")
        self.head: List[HeadColumn] = []
        self.quantifiers: List[Quantifier] = []
        self.predicates: List[ast.Expr] = []
        self.distinct: bool = False
        # Left-outer-join groups: list of (null_supplying_qname, join_preds).
        self.outer_joins: List[Tuple[str, List[ast.Expr]]] = []

    def output_columns(self) -> List[str]:
        return [col.name for col in self.head]

    def quantifier(self, name: str) -> Quantifier:
        for quant in self.quantifiers:
            if quant.name == name:
                return quant
        raise KeyError(name)

    def children(self) -> List[Box]:
        return [q.box for q in self.quantifiers]

    def __repr__(self) -> str:
        quants = ", ".join(q.name for q in self.quantifiers)
        preds = " AND ".join(p.to_sql() for p in self.predicates) or "TRUE"
        head = ", ".join(f"{c.name}={c.expr.to_sql()}" for c in self.head)
        distinct = " DISTINCT" if self.distinct else ""
        return f"Select{distinct}[{head}] over ({quants}) where {preds}"


class GroupByBox(Box):
    """Grouping box: one input quantifier, group keys, aggregate head."""

    def __init__(self, name: str = ""):
        super().__init__(name or "groupby")
        self.input: Optional[Quantifier] = None
        self.group_keys: List[ast.Expr] = []
        self.head: List[HeadColumn] = []
        self.having: List[ast.Expr] = []

    def output_columns(self) -> List[str]:
        return [col.name for col in self.head]

    def children(self) -> List[Box]:
        return [self.input.box] if self.input else []

    def __repr__(self) -> str:
        keys = ", ".join(k.to_sql() for k in self.group_keys)
        head = ", ".join(f"{c.name}={c.expr.to_sql()}" for c in self.head)
        return f"GroupBy[{head}] keys ({keys})"


class SetOpBox(Box):
    """UNION / INTERSECT / EXCEPT box."""

    def __init__(self, op: str, all: bool, left: Box, right: Box):
        super().__init__(op.lower())
        self.op = op
        self.all = all
        self.left = left
        self.right = right

    def output_columns(self) -> List[str]:
        return self.left.output_columns()

    def children(self) -> List[Box]:
        return [self.left, self.right]

    def __repr__(self) -> str:
        return f"{self.op}{' ALL' if self.all else ''}"


class ValuesBox(Box):
    """Literal row source (used for INSERT ... VALUES and tests)."""

    def __init__(self, columns: List[str], rows: List[Tuple[Any, ...]]):
        super().__init__("values")
        self._columns = columns
        self.rows = rows

    def output_columns(self) -> List[str]:
        return self._columns

    def __repr__(self) -> str:
        return f"Values[{len(self.rows)} rows]"


class TopBox(Box):
    """ORDER BY / LIMIT / OFFSET applied to a child box."""

    def __init__(
        self,
        child: Box,
        order_by: List[Tuple[ast.Expr, bool]],
        limit: Optional[int],
        offset: Optional[int],
    ):
        super().__init__("top")
        self.child = child
        self.order_by = order_by
        self.limit = limit
        self.offset = offset
        #: number of leading child columns that are externally visible;
        #: columns beyond this are hidden sort keys trimmed after ordering.
        self.visible: Optional[int] = None

    def output_columns(self) -> List[str]:
        columns = self.child.output_columns()
        if self.visible is not None:
            return columns[: self.visible]
        return columns

    def children(self) -> List[Box]:
        return [self.child]

    def __repr__(self) -> str:
        order = ", ".join(
            f"{e.to_sql()} {'ASC' if asc else 'DESC'}" for e, asc in self.order_by
        )
        return f"Top[order=({order}) limit={self.limit} offset={self.offset}]"


# ---------------------------------------------------------------------------
# Resolved expression nodes
# ---------------------------------------------------------------------------


@dataclass
class QGMColumnRef(ast.Expr):
    """Column of a quantifier in the current box."""

    quantifier: str
    column: str

    def to_sql(self) -> str:
        return f"{self.quantifier}.{self.column}"


@dataclass
class OuterRef(ast.Expr):
    """Correlated reference to a quantifier of an enclosing box."""

    quantifier: str
    column: str

    def to_sql(self) -> str:
        return f"outer({self.quantifier}.{self.column})"


@dataclass
class SubqueryExpr(ast.Expr):
    """A subquery embedded in a predicate or scalar expression.

    ``kind`` is ``EXISTS``, ``IN`` or ``SCALAR``.  For IN, ``operand`` is the
    tested expression.  ``correlated`` is computed at build time and controls
    executor memoisation.
    """

    kind: str
    box: Box
    operand: Optional[ast.Expr] = None
    negated: bool = False
    correlated: bool = False

    def to_sql(self) -> str:
        not_kw = "NOT " if self.negated else ""
        if self.kind == "EXISTS":
            return f"{not_kw}EXISTS(<{self.box.name}>)"
        if self.kind == "IN":
            return f"{self.operand.to_sql()} {not_kw}IN (<{self.box.name}>)"
        return f"(<{self.box.name}>)"


def walk_resolved(expr: ast.Expr):
    """Depth-first walk that also knows about the QGM expression nodes."""
    yield expr
    if isinstance(expr, (QGMColumnRef, OuterRef, ast.Literal)):
        return
    if isinstance(expr, SubqueryExpr):
        if expr.operand is not None:
            yield from walk_resolved(expr.operand)
        return
    if isinstance(expr, ast.BinaryOp):
        yield from walk_resolved(expr.left)
        yield from walk_resolved(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        yield from walk_resolved(expr.operand)
    elif isinstance(expr, ast.IsNull):
        yield from walk_resolved(expr.operand)
    elif isinstance(expr, ast.Between):
        yield from walk_resolved(expr.operand)
        yield from walk_resolved(expr.low)
        yield from walk_resolved(expr.high)
    elif isinstance(expr, ast.InList):
        yield from walk_resolved(expr.operand)
        for item in expr.items:
            yield from walk_resolved(item)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            yield from walk_resolved(arg)
    elif isinstance(expr, ast.Case):
        for cond, result in expr.whens:
            yield from walk_resolved(cond)
            yield from walk_resolved(result)
        if expr.else_result is not None:
            yield from walk_resolved(expr.else_result)


def box_expressions(box: Box):
    """Yield every resolved expression stored directly in *box*."""
    if isinstance(box, SelectBox):
        for col in box.head:
            yield col.expr
        yield from box.predicates
        for _, preds in box.outer_joins:
            yield from preds
    elif isinstance(box, GroupByBox):
        for col in box.head:
            yield col.expr
        yield from box.group_keys
        yield from box.having
    elif isinstance(box, TopBox):
        for expr, _ in box.order_by:
            yield expr


def collect_outer_refs(box: Box) -> set:
    """All (quantifier, column) pairs referenced from *box* via OuterRef.

    Used at plan-compile time to decide which bindings of the enclosing row
    must be pushed onto the environment stack before running a subplan.
    """
    found = set()

    def visit(b: Box) -> None:
        for expr in box_expressions(b):
            for node in walk_resolved(expr):
                if isinstance(node, OuterRef):
                    found.add((node.quantifier, node.column))
                elif isinstance(node, SubqueryExpr):
                    visit(node.box)
        for child in b.children():
            visit(child)

    visit(box)
    return found


def referenced_quantifiers(expr: ast.Expr) -> set:
    """Names of the current box's quantifiers used by *expr*."""
    return {
        node.quantifier
        for node in walk_resolved(expr)
        if isinstance(node, QGMColumnRef)
    }


def has_subquery(expr: ast.Expr) -> bool:
    return any(isinstance(node, SubqueryExpr) for node in walk_resolved(expr))
