"""Column-vector batches: the unit of work of the vectorized executor.

A :class:`Batch` is a fixed-capacity chunk of rows stored column-wise:
``columns[pos][i]`` is the value of column *pos* in row *i*.  An optional
*selection vector* (``sel``) lists the indices of the rows that are still
alive — filters never copy column data, they only shrink the selection.
Operators that need dense output (projections, joins) compact on demand.

The second half of this module holds the *selection kernels*: tight,
allocation-light loops used by the batch expression compiler
(:class:`~repro.relational.executor.exprs.VecExprCompiler`).  They inline
SQL's NULL-propagating comparison semantics (``sql_compare``) directly into
list comprehensions, which is where the constant-factor win over
tuple-at-a-time execution comes from — one Python-level loop per batch
instead of several closure calls per row.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TypeCheckError

#: Rows per batch.  Big enough to amortise per-batch dispatch, small enough
#: that a batch's columns stay cache-friendly and LIMIT does not overshoot
#: by much.
BATCH_SIZE = 1024

#: Python domains that SQL treats as mutually comparable numerics.
NUMERIC = (int, float, bool)


class Batch:
    """One column-wise chunk of rows with an optional selection vector.

    ``columns`` are dense sequences of equal length ``length``; ``sel`` is
    either ``None`` (all rows alive) or a strictly increasing list of live
    row indices.  Batches are immutable by convention: operators build new
    batches (or new selection vectors) instead of mutating columns in place.
    """

    __slots__ = ("columns", "length", "sel")

    def __init__(
        self,
        columns: Sequence[Sequence[Any]],
        length: int,
        sel: Optional[List[int]] = None,
    ):
        self.columns = columns
        self.length = length
        self.sel = sel

    @property
    def num_active(self) -> int:
        return len(self.sel) if self.sel is not None else self.length

    def active_indices(self) -> Sequence[int]:
        """The live row indices (a ``range`` when no selection exists)."""
        return self.sel if self.sel is not None else range(self.length)

    def iter_rows(self) -> Iterator[Tuple[Any, ...]]:
        """Yield the live rows as tuples (the batch→row bridge)."""
        cols = self.columns
        if self.sel is None:
            if not cols:
                empty = ()
                for _ in range(self.length):
                    yield empty
                return
            yield from zip(*cols)
            return
        if not cols:
            empty = ()
            for _ in self.sel:
                yield empty
            return
        for i in self.sel:
            yield tuple(col[i] for col in cols)

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """The live rows, materialised (used by sort/join build sides)."""
        cols = self.columns
        if self.sel is None:
            if not cols:
                return [()] * self.length
            return list(zip(*cols))
        if not cols:
            return [()] * len(self.sel)
        sel = self.sel
        return list(zip(*[[col[i] for i in sel] for col in cols]))


def batch_from_rows(rows: Sequence[Tuple[Any, ...]], width: int) -> Batch:
    """Transpose row tuples into a dense batch (C-speed via ``zip``)."""
    if not rows:
        return Batch([[] for _ in range(width)], 0)
    return Batch(list(zip(*rows)), len(rows))


def batches_from_rows(
    rows: Iterator[Tuple[Any, ...]], width: int, batch_size: int = BATCH_SIZE
) -> Iterator[Batch]:
    """Chunk a row iterator into dense batches."""
    buffer: List[Tuple[Any, ...]] = []
    append = buffer.append
    for row in rows:
        append(row)
        if len(buffer) >= batch_size:
            yield batch_from_rows(buffer, width)
            buffer = []
            append = buffer.append
    if buffer:
        yield batch_from_rows(buffer, width)


def gather(column: Sequence[Any], idx: Sequence[int]) -> Sequence[Any]:
    """Column values at the live indices; avoids copying when already dense."""
    if type(idx) is range and len(idx) == len(column):
        return column
    return [column[i] for i in idx]


# ---------------------------------------------------------------------------
# Selection kernels: one batch-level loop per predicate.
#
# Each kernel keeps exactly the rows on which the predicate is True — SQL's
# filter semantics (False and NULL both drop).  Domain mismatches raise
# TypeCheckError just like sql_compare, via the _domain_error slow path.
# ---------------------------------------------------------------------------


def _domain_error(value: Any, other: Any) -> bool:
    raise TypeCheckError(
        f"cannot compare {type(value).__name__} with {type(other).__name__}"
    )


def sel_cmp_const(
    column: Sequence[Any], idx: Sequence[int], op: str, constant: Any
) -> List[int]:
    """Keep indices where ``column[i] <op> constant`` is True.

    A NULL constant matches nothing (the comparison is unknown for every
    row).  The per-domain branches let the hot comparison run inline in a
    list comprehension; rows in the wrong domain take the raising slow path.
    """
    if constant is None:
        return []
    if isinstance(constant, NUMERIC):
        ok = NUMERIC
    elif isinstance(constant, str):
        ok = str  # type: ignore[assignment]
    else:
        return _domain_error(constant, constant) or []
    k = constant
    if op == "=":
        return [i for i in idx if (v := column[i]) is not None
                and (v == k if isinstance(v, ok) else _domain_error(v, k))]
    if op == "<>":
        return [i for i in idx if (v := column[i]) is not None
                and (v != k if isinstance(v, ok) else _domain_error(v, k))]
    if op == "<":
        return [i for i in idx if (v := column[i]) is not None
                and (v < k if isinstance(v, ok) else _domain_error(v, k))]
    if op == "<=":
        return [i for i in idx if (v := column[i]) is not None
                and (v <= k if isinstance(v, ok) else _domain_error(v, k))]
    if op == ">":
        return [i for i in idx if (v := column[i]) is not None
                and (v > k if isinstance(v, ok) else _domain_error(v, k))]
    if op == ">=":
        return [i for i in idx if (v := column[i]) is not None
                and (v >= k if isinstance(v, ok) else _domain_error(v, k))]
    raise TypeCheckError(f"unknown comparison operator {op!r}")


def sel_cmp_columns(
    left: Sequence[Any], right: Sequence[Any], idx: Sequence[int], op: str
) -> List[int]:
    """Keep indices where ``left[i] <op> right[i]`` is True (both columns)."""
    if op == "=":
        return [i for i in idx
                if (a := left[i]) is not None and (b := right[i]) is not None
                and (a == b if _same_domain(a, b) else _domain_error(a, b))]
    if op == "<>":
        return [i for i in idx
                if (a := left[i]) is not None and (b := right[i]) is not None
                and (a != b if _same_domain(a, b) else _domain_error(a, b))]
    if op == "<":
        return [i for i in idx
                if (a := left[i]) is not None and (b := right[i]) is not None
                and (a < b if _same_domain(a, b) else _domain_error(a, b))]
    if op == "<=":
        return [i for i in idx
                if (a := left[i]) is not None and (b := right[i]) is not None
                and (a <= b if _same_domain(a, b) else _domain_error(a, b))]
    if op == ">":
        return [i for i in idx
                if (a := left[i]) is not None and (b := right[i]) is not None
                and (a > b if _same_domain(a, b) else _domain_error(a, b))]
    if op == ">=":
        return [i for i in idx
                if (a := left[i]) is not None and (b := right[i]) is not None
                and (a >= b if _same_domain(a, b) else _domain_error(a, b))]
    raise TypeCheckError(f"unknown comparison operator {op!r}")


def _same_domain(a: Any, b: Any) -> bool:
    if isinstance(a, NUMERIC):
        return isinstance(b, NUMERIC)
    if isinstance(a, str):
        return isinstance(b, str)
    return False


def sel_in_set(
    column: Sequence[Any],
    idx: Sequence[int],
    values: frozenset,
    has_null_item: bool,
    negated: bool,
) -> List[int]:
    """Keep indices satisfying ``column[i] [NOT] IN values``.

    3VL as in the row engine's fold: a NULL probe is unknown (dropped); for
    NOT IN, a NULL *item* makes every non-match unknown (dropped).  Set
    membership hashes once per row instead of comparing once per item —
    the algorithmic half of the vectorized IN speedup.
    """
    if negated:
        if has_null_item:
            return []
        return [i for i in idx
                if (v := column[i]) is not None and v not in values]
    return [i for i in idx if (v := column[i]) is not None and v in values]


def sel_is_null(
    column: Sequence[Any], idx: Sequence[int], negated: bool
) -> List[int]:
    if negated:
        return [i for i in idx if column[i] is not None]
    return [i for i in idx if column[i] is None]


def sel_like_const(
    column: Sequence[Any], idx: Sequence[int], pattern: str, negated: bool
) -> List[int]:
    """LIKE against a constant pattern, regex compiled once per call."""
    import re

    regex = ""
    for ch in pattern:
        if ch == "%":
            regex += ".*"
        elif ch == "_":
            regex += "."
        else:
            regex += re.escape(ch)
    match = re.compile(regex, flags=re.DOTALL).fullmatch
    if negated:
        return [i for i in idx if (v := column[i]) is not None
                and (match(v) is None if isinstance(v, str)
                     else _like_type_error())]
    return [i for i in idx if (v := column[i]) is not None
            and (match(v) is not None if isinstance(v, str)
                 else _like_type_error())]


def _like_type_error() -> bool:
    raise TypeCheckError("LIKE requires string operands")


def sel_from_truth(
    idx: Sequence[int], truth: Sequence[Optional[bool]]
) -> List[int]:
    """Generic fallback: keep indices whose 3VL truth value is True."""
    return [i for i, t in zip(idx, truth) if t is True]
