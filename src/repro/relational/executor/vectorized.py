"""Batch-at-a-time (vectorized) physical operators.

Each operator consumes and produces :class:`~repro.relational.executor.batch.Batch`
objects — column vectors with an optional selection vector — instead of one
tuple at a time.  The interface mirrors :class:`PlanOp` (re-iterable, explain
tree) with one addition, ``batches(env)``; ``rows(env)`` is derived from it,
so a vectorized subtree drops into any row-at-a-time consumer unchanged.

Division of labour with the row operators:

* filters evaluate a compiled *selection function* once per batch and only
  shrink the selection vector — column data is never copied;
* projections/joins compact to dense batches on output;
* anything the vector expression compiler cannot handle (subqueries, CASE,
  correlated references) stays on the row pipeline — the planner bridges the
  two worlds with :class:`RowSource`.

Labels are prefixed ``Vec`` so EXPLAIN output shows which mode a plan runs in.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.relational.executor.batch import (
    BATCH_SIZE,
    Batch,
    batch_from_rows,
    batches_from_rows,
)
from repro.relational.executor.exprs import SelFn, VecValueFn
from repro.relational.executor.operators import (
    AggSpec,
    Env,
    PlanOp,
    Row,
    RowFn,
    _Accumulator,
)
from repro.relational.types import sort_key


def _rebatch(rows: List[Row], batch_size: int = BATCH_SIZE) -> Iterator[Batch]:
    """Chunk a materialised row list into dense batches."""
    for start in range(0, len(rows), batch_size):
        yield batch_from_rows(rows[start : start + batch_size], 0)


class VecOp(PlanOp):
    """Base class: re-iterable *batch* source.

    ``rows(env)`` flattens ``batches(env)``, so a VecOp satisfies the row
    protocol everywhere (correlated subplans, DML, the result collector).
    """

    label = "vec-plan"

    def batches(self, env: Env) -> Iterator[Batch]:
        raise NotImplementedError

    def rows(self, env: Env) -> Iterator[Row]:
        for batch in self.batches(env):
            yield from batch.iter_rows()


class RowSource(VecOp):
    """Bridge: chunks any row operator's output into batches.

    The planner inserts one wherever a vectorized operator consumes a
    row-only subtree (index scans, correlated subplans, set operations).
    """

    def __init__(self, child: PlanOp, width: int):
        self.child = child
        self.width = width
        self.label = "RowSource"

    def batches(self, env: Env) -> Iterator[Batch]:
        return batches_from_rows(self.child.rows(env), self.width)

    def rows(self, env: Env) -> Iterator[Row]:
        # A row consumer gets the child directly — no batch round-trip.
        return self.child.rows(env)

    def children(self) -> List[PlanOp]:
        return [self.child]


def as_batch_source(op: PlanOp, width: int) -> VecOp:
    """*op* itself when already vectorized, else a :class:`RowSource`."""
    if isinstance(op, VecOp):
        return op
    return RowSource(op, width)


class VecSeqScan(VecOp):
    """Full scan emitting column batches straight from heap pages.

    Skips the per-row RID allocation of the row SeqScan: pages yield plain
    row lists which are transposed page-at-a-time.  Never used for virtual
    (SYS_*) tables — their providers must be re-pulled per scan and stay on
    the row path.
    """

    def __init__(self, table):
        self.table = table
        self.label = f"VecSeqScan({table.name})"

    def batches(self, env: Env) -> Iterator[Batch]:
        width = len(self.table.columns)
        buffer: List[Row] = []
        # Table.scan_row_chunks dispatches to the heap directly on the fast
        # path and to snapshot-resolved chunks under MVCC, so vectorized
        # scans see exactly the row images the row executor would.
        for chunk in self.table.scan_row_chunks():
            buffer.extend(chunk)
            if len(buffer) >= BATCH_SIZE:
                yield batch_from_rows(buffer, width)
                buffer = []
        if buffer:
            yield batch_from_rows(buffer, width)


class VecFilter(VecOp):
    """Filter by shrinking the selection vector; columns are shared."""

    def __init__(self, child: VecOp, sel_fn: SelFn, label: str = ""):
        self.child = child
        self.sel_fn = sel_fn
        self.label = f"VecFilter({label})" if label else "VecFilter"

    def batches(self, env: Env) -> Iterator[Batch]:
        sel_fn = self.sel_fn
        for batch in self.child.batches(env):
            sel = sel_fn(batch.columns, batch.active_indices(), env)
            if sel:
                yield Batch(batch.columns, batch.length, sel)

    def children(self) -> List[PlanOp]:
        return [self.child]


class VecProject(VecOp):
    """Compute output columns per batch; output batches are dense."""

    def __init__(self, child: VecOp, vfns: Sequence[VecValueFn], label: str = ""):
        self.child = child
        self.vfns = list(vfns)
        self.label = f"VecProject({label})" if label else "VecProject"

    def batches(self, env: Env) -> Iterator[Batch]:
        vfns = self.vfns
        for batch in self.child.batches(env):
            idx = batch.active_indices()
            count = len(idx)
            if count == 0:
                continue
            cols = batch.columns
            yield Batch([vfn(cols, idx, env) for vfn in vfns], count)

    def children(self) -> List[PlanOp]:
        return [self.child]


class VecHashJoin(VecOp):
    """Equi-join over batches (INNER/LEFT, no residual predicate).

    Keys are extracted as whole vectors per batch; the probe loop then runs
    over pre-extracted key lists and materialised row tuples.  NULL key
    components never join, matching the row HashJoin.  Joins that carry a
    residual predicate keep the row operator (per-left-row match bookkeeping
    does not columnarise cleanly).
    """

    def __init__(
        self,
        left: VecOp,
        right: VecOp,
        left_keys: Sequence[VecValueFn],
        right_keys: Sequence[VecValueFn],
        kind: str = "INNER",
        right_width: int = 0,
    ):
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.kind = kind
        self.right_width = right_width
        self.label = f"VecHashJoin[{kind}]"

    def batches(self, env: Env) -> Iterator[Batch]:
        table: Dict[Any, List[Row]] = {}
        setdefault = table.setdefault
        single = len(self.right_keys) == 1
        for batch in self.right.batches(env):
            idx = batch.active_indices()
            if not len(idx):
                continue
            rows = batch.to_rows()
            key_vecs = [fn(batch.columns, idx, env) for fn in self.right_keys]
            if single:
                for key, row in zip(key_vecs[0], rows):
                    if key is not None:
                        setdefault(key, []).append(row)
            else:
                for pos, row in enumerate(rows):
                    key = tuple(vec[pos] for vec in key_vecs)
                    if None in key:
                        continue  # NULL never equi-joins
                    setdefault(key, []).append(row)
        get = table.get
        pad = (None,) * self.right_width
        left_join = self.kind == "LEFT"
        out: List[Row] = []
        append = out.append
        for batch in self.left.batches(env):
            idx = batch.active_indices()
            if not len(idx):
                continue
            lrows = batch.to_rows()
            key_vecs = [fn(batch.columns, idx, env) for fn in self.left_keys]
            if single:
                for key, lrow in zip(key_vecs[0], lrows):
                    matches = get(key) if key is not None else None
                    if matches:
                        for rrow in matches:
                            append(lrow + rrow)
                    elif left_join:
                        append(lrow + pad)
            else:
                for pos, lrow in enumerate(lrows):
                    key = tuple(vec[pos] for vec in key_vecs)
                    matches = get(key) if None not in key else None
                    if matches:
                        for rrow in matches:
                            append(lrow + rrow)
                    elif left_join:
                        append(lrow + pad)
            if len(out) >= BATCH_SIZE:
                yield batch_from_rows(out, 0)
                out = []
                append = out.append
        if out:
            yield batch_from_rows(out, 0)

    def children(self) -> List[PlanOp]:
        return [self.left, self.right]


class VecHashAggregate(VecOp):
    """Hash grouping with vectorized input consumption.

    Group keys and aggregate arguments are extracted as whole vectors per
    batch; the accumulation itself stays per-row (the dict lookup dominates).
    Internal rows and the ``head_fns``/``having_fns`` contract match the row
    :class:`HashAggregate` exactly — the planner compiles those finalisers
    once against the internal layout, independent of executor mode.
    """

    def __init__(
        self,
        child: VecOp,
        key_vfns: Sequence[VecValueFn],
        arg_vfns: Sequence[Optional[VecValueFn]],
        agg_specs: Sequence[AggSpec],
        head_fns: Sequence[RowFn],
        having_fns: Sequence[RowFn] = (),
        global_group: bool = False,
    ):
        self.child = child
        self.key_vfns = list(key_vfns)
        self.arg_vfns = list(arg_vfns)  # None slot = COUNT(*)
        self.agg_specs = list(agg_specs)
        self.head_fns = list(head_fns)
        self.having_fns = list(having_fns)
        self.global_group = global_group
        self.label = (
            f"VecHashAggregate(keys={len(key_vfns)}, aggs={len(agg_specs)})"
        )

    def batches(self, env: Env) -> Iterator[Batch]:
        groups: Dict[tuple, List[_Accumulator]] = {}
        order: List[tuple] = []
        specs = self.agg_specs
        key_vfns = self.key_vfns
        arg_vfns = self.arg_vfns
        for batch in self.child.batches(env):
            idx = batch.active_indices()
            count = len(idx)
            if count == 0:
                continue
            cols = batch.columns
            key_vecs = [vfn(cols, idx, env) for vfn in key_vfns]
            arg_vecs = [
                vfn(cols, idx, env) if vfn is not None else None
                for vfn in arg_vfns
            ]
            for pos in range(count):
                key = tuple(vec[pos] for vec in key_vecs)
                accs = groups.get(key)
                if accs is None:
                    accs = [_Accumulator(spec) for spec in specs]
                    groups[key] = accs
                    order.append(key)
                for acc, vec in zip(accs, arg_vecs):
                    if vec is None:
                        acc.count += 1  # COUNT(*)
                    else:
                        acc.add_value(vec[pos])
        if not groups and self.global_group:
            key = ()
            groups[key] = [_Accumulator(spec) for spec in specs]
            order.append(key)
        out: List[Row] = []
        for key in order:
            internal = key + tuple(acc.result() for acc in groups[key])
            if any(fn(internal, env) is not True for fn in self.having_fns):
                continue
            out.append(tuple(fn(internal, env) for fn in self.head_fns))
            if len(out) >= BATCH_SIZE:
                yield batch_from_rows(out, 0)
                out = []
        if out:
            yield batch_from_rows(out, 0)

    def children(self) -> List[PlanOp]:
        return [self.child]


class VecSort(VecOp):
    """Materialise, sort with the shared ``sort_key`` order, re-batch.

    Sorting is a pipeline breaker either way; the vectorized variant only
    saves the per-row generator hops on input and output.  Key functions are
    row closures — they run once per row once at the breaker, so vectorizing
    them buys nothing.
    """

    def __init__(
        self, child: VecOp, key_fns: Sequence[RowFn], ascending: Sequence[bool]
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.ascending = list(ascending)
        self.label = "VecSort"

    def batches(self, env: Env) -> Iterator[Batch]:
        data: List[Row] = []
        for batch in self.child.batches(env):
            data.extend(batch.to_rows())
        for key_fn, asc in reversed(list(zip(self.key_fns, self.ascending))):
            data.sort(key=lambda row: sort_key(key_fn(row, env)), reverse=not asc)
        return _rebatch(data)

    def children(self) -> List[PlanOp]:
        return [self.child]


class VecLimit(VecOp):
    """OFFSET/LIMIT by slicing selection vectors — no data movement."""

    def __init__(self, child: VecOp, limit: Optional[int], offset: Optional[int]):
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.label = f"VecLimit({limit}, offset={offset or 0})"

    def batches(self, env: Env) -> Iterator[Batch]:
        to_skip = self.offset
        remaining = self.limit
        for batch in self.child.batches(env):
            idx = batch.active_indices()
            count = len(idx)
            if count == 0:
                continue
            if to_skip:
                if count <= to_skip:
                    to_skip -= count
                    continue
                idx = list(idx)[to_skip:]
                count = len(idx)
                to_skip = 0
            if remaining is not None:
                if remaining <= 0:
                    return
                if count > remaining:
                    idx = list(idx)[:remaining]
                    count = remaining
                remaining -= count
            yield Batch(batch.columns, batch.length, list(idx))

    def children(self) -> List[PlanOp]:
        return [self.child]


class VecDistinct(VecOp):
    """First-occurrence de-duplication, selecting survivors per batch."""

    def __init__(self, child: VecOp):
        self.child = child
        self.label = "VecDistinct"

    def batches(self, env: Env) -> Iterator[Batch]:
        seen: set = set()
        add = seen.add
        for batch in self.child.batches(env):
            # to_rows() transposes at C speed; the zip keeps row tuples
            # aligned with their live indices for the surviving selection.
            sel = [
                i
                for i, row in zip(batch.active_indices(), batch.to_rows())
                if row not in seen and add(row) is None
            ]
            if sel:
                yield Batch(batch.columns, batch.length, sel)

    def children(self) -> List[PlanOp]:
        return [self.child]
