"""Expression compilation: QGM expressions → Python closures.

A compiled expression is a function ``fn(row, env)`` where *row* is the
current operator's tuple and *env* is the environment stack — a list of
``{(quantifier, column): value}`` dicts pushed by enclosing queries (for
correlated subqueries) and by the XNF path-expression evaluator.

Compiling once and evaluating many times is what makes tuple-at-a-time
execution tolerable in Python; it also mirrors Starburst's "query refinement"
stage, which emits an executable plan rather than re-interpreting QGM.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, TypeCheckError
from repro.relational.qgm.model import OuterRef, QGMColumnRef, SubqueryExpr
from repro.relational.sql import ast
from repro.relational.types import (
    sql_arith,
    sql_compare,
    sql_like,
    tv_and,
    tv_not,
    tv_or,
)

#: Maps (quantifier, column) to a tuple position.
Layout = Dict[Tuple[str, str], int]

CompiledExpr = Callable[[Tuple[Any, ...], List[Dict]], Any]


class PlanContext:
    """Shared mutable state of one compiled plan.

    ``params`` is the bind-parameter vector: compiled ``Parameter`` closures
    read slots of this list at evaluation time, so a cached plan is re-run
    with new constants by assigning ``params[:]`` — no recompilation.

    ``epoch`` is bumped once per top-level execution; the uncorrelated
    subquery memos below key on it, so they are computed once per execution
    but never leak results across executions of a cached plan (the
    underlying data may have changed in between).
    """

    __slots__ = ("params", "epoch")

    def __init__(self, params: Optional[List[Any]] = None):
        self.params: List[Any] = params if params is not None else []
        self.epoch = 0

    def bump(self) -> None:
        self.epoch += 1


class ExprCompiler:
    """Compiles resolved expressions against a row layout.

    ``subplan_factory(box)`` must return an object with
    ``rows(env) -> iterator of tuples`` — the planner provides this to
    execute subquery boxes.  ``precomputed`` maps an expression's SQL text to
    a tuple position; the aggregate operator uses it to route aggregate
    results and group keys into final head expressions.
    """

    def __init__(
        self,
        layout: Layout,
        subplan_factory: Optional[Callable[[Any], Any]] = None,
        precomputed: Optional[Dict[str, int]] = None,
        context: Optional[PlanContext] = None,
    ):
        self.layout = layout
        self.subplan_factory = subplan_factory
        self.precomputed = precomputed or {}
        self.context = context

    def compile(self, expr: ast.Expr) -> CompiledExpr:
        pre = self.precomputed.get(expr.to_sql())
        if pre is not None:
            pos = pre
            return lambda row, env: row[pos]
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda row, env: value
        if isinstance(expr, ast.Parameter):
            ctx = self.context
            if ctx is None:
                raise ExecutionError(
                    f"bind parameter {expr.to_sql()} outside a prepared statement"
                )
            idx = expr.index
            return lambda row, env: ctx.params[idx]
        if isinstance(expr, QGMColumnRef):
            key = (expr.quantifier, expr.column)
            if key not in self.layout:
                raise ExecutionError(
                    f"column {expr.to_sql()} not in row layout {sorted(self.layout)}"
                )
            pos = self.layout[key]
            return lambda row, env: row[pos]
        if isinstance(expr, OuterRef):
            key = (expr.quantifier, expr.column)
            return _compile_outer_ref(key)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self.compile(expr.operand)
            if expr.op == "NOT":
                return lambda row, env: tv_not(operand(row, env))
            if expr.op == "-":
                def negate(row, env):
                    value = operand(row, env)
                    return None if value is None else -value

                return negate
            raise TypeCheckError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.IsNull):
            operand = self.compile(expr.operand)
            if expr.negated:
                return lambda row, env: operand(row, env) is not None
            return lambda row, env: operand(row, env) is None
        if isinstance(expr, ast.Between):
            return self._compile_between(expr)
        if isinstance(expr, ast.InList):
            return self._compile_in_list(expr)
        if isinstance(expr, SubqueryExpr):
            return self._compile_subquery(expr)
        if isinstance(expr, ast.FuncCall):
            return self._compile_func(expr)
        if isinstance(expr, ast.Case):
            return self._compile_case(expr)
        raise TypeCheckError(f"cannot compile expression {expr!r}")

    def compile_predicate(self, expr: ast.Expr) -> CompiledExpr:
        """Compile to a filter: returns truthiness (None counts as False)."""
        inner = self.compile(expr)
        return lambda row, env: inner(row, env) is True

    # -- node-specific compilers -------------------------------------------------

    def _compile_binary(self, expr: ast.BinaryOp) -> CompiledExpr:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "AND":
            return lambda row, env: tv_and(left(row, env), right(row, env))
        if op == "OR":
            return lambda row, env: tv_or(left(row, env), right(row, env))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda row, env: sql_compare(op, left(row, env), right(row, env))
        if op in ("+", "-", "*", "/", "%", "||"):
            return lambda row, env: sql_arith(op, left(row, env), right(row, env))
        if op == "LIKE":
            return lambda row, env: sql_like(left(row, env), right(row, env))
        raise TypeCheckError(f"unknown binary operator {op!r}")

    def _compile_between(self, expr: ast.Between) -> CompiledExpr:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def run(row, env):
            value = operand(row, env)
            result = tv_and(
                sql_compare(">=", value, low(row, env)),
                sql_compare("<=", value, high(row, env)),
            )
            return tv_not(result) if negated else result

        return run

    def _compile_in_list(self, expr: ast.InList) -> CompiledExpr:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def run(row, env):
            value = operand(row, env)
            result: Optional[bool] = False
            for item in items:
                result = tv_or(result, sql_compare("=", value, item(row, env)))
                if result is True:
                    break
            return tv_not(result) if negated else result

        return run

    def _compile_subquery(self, expr: SubqueryExpr) -> CompiledExpr:
        if self.subplan_factory is None:
            raise ExecutionError("subquery found but no subplan factory given")
        from repro.relational.qgm.model import collect_outer_refs

        subplan = self.subplan_factory(expr.box)
        correlated = expr.correlated
        negated = expr.negated
        # Bindings of the *current* row the subquery needs: push them as an
        # environment frame so OuterRef lookups resolve per outer row.
        corr_keys = [
            key for key in sorted(collect_outer_refs(expr.box)) if key in self.layout
        ]
        positions = [self.layout[key] for key in corr_keys]

        if corr_keys:

            def sub_env(row, env):
                frame = {
                    key: row[pos] for key, pos in zip(corr_keys, positions)
                }
                return env + [frame]

        else:

            def sub_env(row, env):
                return env

        # Uncorrelated subqueries are memoized once per execution epoch: the
        # memo survives the rows of one execution but is recomputed when a
        # cached plan is re-run (its data may have changed in between).
        ctx = self.context

        def memo_valid(memo: Dict[str, Any]) -> bool:
            epoch = ctx.epoch if ctx is not None else 0
            return memo.get("epoch") == epoch and "value" in memo

        def memo_store(memo: Dict[str, Any], value: Any) -> None:
            memo["epoch"] = ctx.epoch if ctx is not None else 0
            memo["value"] = value

        if expr.kind == "EXISTS":
            cache: Dict[str, Any] = {}

            def run_exists(row, env):
                if not correlated and memo_valid(cache):
                    found = cache["value"]
                else:
                    found = any(True for _ in subplan.rows(sub_env(row, env)))
                    if not correlated:
                        memo_store(cache, found)
                return (not found) if negated else found

            return run_exists
        if expr.kind == "IN":
            operand = self.compile(expr.operand)
            cache: Dict[str, Any] = {}

            def run_in(row, env):
                value = operand(row, env)
                if value is None:
                    return None
                if not correlated and memo_valid(cache):
                    values, has_null = cache["value"]
                else:
                    values = set()
                    has_null = False
                    for sub_row in subplan.rows(sub_env(row, env)):
                        if sub_row[0] is None:
                            has_null = True
                        else:
                            values.add(sub_row[0])
                    if not correlated:
                        memo_store(cache, (values, has_null))
                if value in values:
                    result: Optional[bool] = True
                elif has_null:
                    result = None
                else:
                    result = False
                return tv_not(result) if negated else result

            return run_in
        if expr.kind == "SCALAR":
            cache: Dict[str, Any] = {}

            def run_scalar(row, env):
                if not correlated and memo_valid(cache):
                    return cache["value"]
                result = None
                seen = False
                for sub_row in subplan.rows(sub_env(row, env)):
                    if seen:
                        raise ExecutionError("scalar subquery returned > 1 row")
                    result = sub_row[0]
                    seen = True
                if not correlated:
                    memo_store(cache, result)
                return result

            return run_scalar
        raise TypeCheckError(f"unknown subquery kind {expr.kind!r}")

    def _compile_func(self, expr: ast.FuncCall) -> CompiledExpr:
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name} outside GROUP BY context: {expr.to_sql()}"
            )
        args = [self.compile(arg) for arg in expr.args]
        name = expr.name
        if name.startswith("CAST_"):
            return _compile_cast(name[5:], args[0])
        impl = _SCALAR_IMPLS.get(name)
        if impl is None:
            raise TypeCheckError(f"unknown function {name!r}")
        return lambda row, env: impl([arg(row, env) for arg in args])

    def _compile_case(self, expr: ast.Case) -> CompiledExpr:
        whens = [
            (self.compile(cond), self.compile(result)) for cond, result in expr.whens
        ]
        else_fn = (
            self.compile(expr.else_result) if expr.else_result is not None else None
        )

        def run(row, env):
            for cond, result in whens:
                if cond(row, env) is True:
                    return result(row, env)
            if else_fn is not None:
                return else_fn(row, env)
            return None

        return run


def _compile_outer_ref(key: Tuple[str, str]) -> CompiledExpr:
    def run(row, env):
        for frame in reversed(env):
            if key in frame:
                return frame[key]
        raise ExecutionError(f"unbound outer reference {key[0]}.{key[1]}")

    return run


def cast_value(type_name: str, value: Any) -> Any:
    """CAST one value (shared by the row and vector compilers)."""
    if value is None:
        return None
    try:
        if type_name in ("INTEGER", "INT", "BIGINT", "SMALLINT"):
            return int(float(value)) if isinstance(value, str) else int(value)
        if type_name in ("FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC"):
            return float(value)
        if type_name in ("VARCHAR", "CHAR", "TEXT", "STRING"):
            if isinstance(value, bool):
                return "TRUE" if value else "FALSE"
            return str(value)
        if type_name in ("BOOLEAN", "BOOL"):
            return bool(value)
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"CAST to {type_name} failed: {exc}") from exc
    raise TypeCheckError(f"unknown CAST target {type_name}")


def _compile_cast(type_name: str, arg: CompiledExpr) -> CompiledExpr:
    return lambda row, env: cast_value(type_name, arg(row, env))


def _scalar_abs(args):
    return None if args[0] is None else abs(args[0])


def _scalar_lower(args):
    return None if args[0] is None else str(args[0]).lower()


def _scalar_upper(args):
    return None if args[0] is None else str(args[0]).upper()


def _scalar_length(args):
    return None if args[0] is None else len(str(args[0]))


def _scalar_coalesce(args):
    for value in args:
        if value is not None:
            return value
    return None


def _scalar_nullif(args):
    if len(args) != 2:
        raise TypeCheckError("NULLIF takes two arguments")
    return None if args[0] == args[1] else args[0]


def _scalar_round(args):
    if args[0] is None:
        return None
    digits = args[1] if len(args) > 1 and args[1] is not None else 0
    return round(args[0], int(digits))


def _scalar_mod(args):
    if args[0] is None or args[1] is None:
        return None
    return sql_arith("%", args[0], args[1])


def _scalar_substr(args):
    if args[0] is None or args[1] is None:
        return None
    text = str(args[0])
    start = int(args[1]) - 1  # SQL is 1-based
    if len(args) > 2 and args[2] is not None:
        return text[start : start + int(args[2])]
    return text[start:]


_SCALAR_IMPLS = {
    "ABS": _scalar_abs,
    "LOWER": _scalar_lower,
    "UPPER": _scalar_upper,
    "LENGTH": _scalar_length,
    "COALESCE": _scalar_coalesce,
    "NULLIF": _scalar_nullif,
    "ROUND": _scalar_round,
    "MOD": _scalar_mod,
    "SUBSTR": _scalar_substr,
}


# ---------------------------------------------------------------------------
# Vectorized expression compilation (the batch executor's inner loops)
# ---------------------------------------------------------------------------

#: Computes one value per live row: ``vfn(columns, idx, env) -> list``.
VecValueFn = Callable[[Sequence[Sequence[Any]], Sequence[int], List[Dict]], list]

#: Filters a selection vector: ``sel(columns, idx, env) -> List[int]``.
SelFn = Callable[[Sequence[Sequence[Any]], Sequence[int], List[Dict]], List[int]]

_VEC_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


class VecExprCompiler:
    """Compiles resolved expressions into *vector* closures over a batch.

    ``compile_value`` returns a closure producing one value per live row;
    ``compile_filter`` returns a closure shrinking a selection vector to the
    rows on which the predicate is True.  Both return ``None`` when the
    expression is not vectorizable (subqueries, CASE, …) — the planner then
    falls back to the row pipeline for that operator.  Compilation happens
    once per plan; the closures run once per *batch*, which is the whole
    point: per-row closure dispatch is replaced by per-batch loops over
    column lists (see :mod:`repro.relational.executor.batch`).
    """

    def __init__(self, layout: Layout, context: Optional[PlanContext] = None):
        self.layout = layout
        self.context = context

    # -- filters ---------------------------------------------------------------

    def compile_filter(self, expr: ast.Expr) -> Optional[SelFn]:
        from repro.relational.executor import batch as B

        if isinstance(expr, ast.BinaryOp):
            if expr.op == "AND":
                left = self.compile_filter(expr.left)
                right = self.compile_filter(expr.right)
                if left is not None and right is not None:
                    # Sequential selection is exact 3VL filtering:
                    # (a AND b) is True  ⇔  a is True and b is True.
                    return lambda cols, idx, env: right(
                        cols, left(cols, idx, env), env
                    )
                return self._truth_filter(expr)
            if expr.op in _VEC_COMPARISONS:
                sel = self._filter_comparison(expr)
                if sel is not None:
                    return sel
                return self._truth_filter(expr)
            if expr.op == "LIKE":
                pos = self._column_position(expr.left)
                pattern = expr.right
                if pos is not None and isinstance(pattern, ast.Literal) and isinstance(
                    pattern.value, str
                ):
                    pat = pattern.value
                    return lambda cols, idx, env: B.sel_like_const(
                        cols[pos], idx, pat, False
                    )
                return self._truth_filter(expr)
            return self._truth_filter(expr)
        if isinstance(expr, ast.IsNull):
            pos = self._column_position(expr.operand)
            if pos is not None:
                negated = expr.negated
                return lambda cols, idx, env: B.sel_is_null(
                    cols[pos], idx, negated
                )
            return self._truth_filter(expr)
        if isinstance(expr, ast.InList):
            sel = self._filter_in_list(expr)
            if sel is not None:
                return sel
            return self._truth_filter(expr)
        if isinstance(expr, ast.Between) and not expr.negated:
            pos = self._column_position(expr.operand)
            low = self._const_fetch(expr.low)
            high = self._const_fetch(expr.high)
            if pos is not None and low is not None and high is not None:
                def sel_between(cols, idx, env):
                    col = cols[pos]
                    idx = B.sel_cmp_const(col, idx, ">=", low(env))
                    return B.sel_cmp_const(col, idx, "<=", high(env))

                return sel_between
            return self._truth_filter(expr)
        return self._truth_filter(expr)

    def _truth_filter(self, expr: ast.Expr) -> Optional[SelFn]:
        """Fallback: compute the 3VL truth vector, keep the True rows."""
        from repro.relational.executor.batch import sel_from_truth

        vfn = self.compile_value(expr)
        if vfn is None:
            return None
        return lambda cols, idx, env: sel_from_truth(idx, vfn(cols, idx, env))

    def _filter_comparison(self, expr: ast.BinaryOp) -> Optional[SelFn]:
        from repro.relational.executor import batch as B

        flip = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        left_pos = self._column_position(expr.left)
        right_pos = self._column_position(expr.right)
        if left_pos is not None and right_pos is not None:
            op = expr.op
            return lambda cols, idx, env: B.sel_cmp_columns(
                cols[left_pos], cols[right_pos], idx, op
            )
        if left_pos is not None:
            const = self._const_fetch(expr.right)
            if const is not None:
                op = expr.op
                pos = left_pos
                return lambda cols, idx, env: B.sel_cmp_const(
                    cols[pos], idx, op, const(env)
                )
        if right_pos is not None:
            const = self._const_fetch(expr.left)
            if const is not None:
                op = flip[expr.op]
                pos = right_pos
                return lambda cols, idx, env: B.sel_cmp_const(
                    cols[pos], idx, op, const(env)
                )
        return None

    def _filter_in_list(self, expr: ast.InList) -> Optional[SelFn]:
        from repro.relational.executor import batch as B

        pos = self._column_position(expr.operand)
        if pos is None:
            return None
        fetchers = [self._const_fetch(item) for item in expr.items]
        if any(fetch is None for fetch in fetchers):
            return None
        negated = expr.negated
        if all(isinstance(item, ast.Literal) for item in expr.items):
            literals = [item.value for item in expr.items]  # type: ignore[union-attr]
            values = frozenset(v for v in literals if v is not None)
            has_null = len(values) != len(literals)
            return lambda cols, idx, env: B.sel_in_set(
                cols[pos], idx, values, has_null, negated
            )

        def sel_in(cols, idx, env):
            items = [fetch(env) for fetch in fetchers]  # type: ignore[misc]
            values = frozenset(v for v in items if v is not None)
            return B.sel_in_set(
                cols[pos], idx, values, len(values) != len(items), negated
            )

        return sel_in

    # -- values ----------------------------------------------------------------

    def compile_value(self, expr: ast.Expr) -> Optional[VecValueFn]:
        from repro.relational.executor.batch import gather

        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda cols, idx, env: [value] * len(idx)
        if isinstance(expr, ast.Parameter):
            ctx = self.context
            if ctx is None:
                return None
            slot = expr.index
            return lambda cols, idx, env: [ctx.params[slot]] * len(idx)
        if isinstance(expr, QGMColumnRef):
            key = (expr.quantifier, expr.column)
            if key not in self.layout:
                return None
            pos = self.layout[key]
            return lambda cols, idx, env: gather(cols[pos], idx)
        if isinstance(expr, OuterRef):
            key = (expr.quantifier, expr.column)
            lookup = _compile_outer_ref(key)
            return lambda cols, idx, env: [lookup((), env)] * len(idx)
        if isinstance(expr, ast.BinaryOp):
            return self._value_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self.compile_value(expr.operand)
            if operand is None:
                return None
            if expr.op == "NOT":
                return lambda cols, idx, env: [
                    tv_not(v) for v in operand(cols, idx, env)
                ]
            if expr.op == "-":
                return lambda cols, idx, env: [
                    None if v is None else -v for v in operand(cols, idx, env)
                ]
            return None
        if isinstance(expr, ast.IsNull):
            operand = self.compile_value(expr.operand)
            if operand is None:
                return None
            if expr.negated:
                return lambda cols, idx, env: [
                    v is not None for v in operand(cols, idx, env)
                ]
            return lambda cols, idx, env: [
                v is None for v in operand(cols, idx, env)
            ]
        if isinstance(expr, ast.Between):
            return self._value_between(expr)
        if isinstance(expr, ast.InList):
            return self._value_in_list(expr)
        if isinstance(expr, ast.FuncCall):
            return self._value_func(expr)
        # SubqueryExpr, Case and anything unknown: not vectorizable.
        return None

    def _value_binary(self, expr: ast.BinaryOp) -> Optional[VecValueFn]:
        op = expr.op
        left = self.compile_value(expr.left)
        right = self.compile_value(expr.right)
        if left is None or right is None:
            return None
        if op == "AND":
            return lambda cols, idx, env: [
                tv_and(a, b)
                for a, b in zip(left(cols, idx, env), right(cols, idx, env))
            ]
        if op == "OR":
            return lambda cols, idx, env: [
                tv_or(a, b)
                for a, b in zip(left(cols, idx, env), right(cols, idx, env))
            ]
        if op in _VEC_COMPARISONS:
            return lambda cols, idx, env: [
                sql_compare(op, a, b)
                for a, b in zip(left(cols, idx, env), right(cols, idx, env))
            ]
        if op in ("+", "-", "*"):
            # Numeric fast path inline; strings and errors via sql_arith.
            def arith(cols, idx, env):
                out = []
                append = out.append
                for a, b in zip(left(cols, idx, env), right(cols, idx, env)):
                    if a is None or b is None:
                        append(None)
                    elif type(a) in (int, float) and type(b) in (int, float):
                        if op == "+":
                            append(a + b)
                        elif op == "-":
                            append(a - b)
                        else:
                            append(a * b)
                    else:
                        append(sql_arith(op, a, b))
                return out

            return arith
        if op in ("/", "%", "||"):
            return lambda cols, idx, env: [
                sql_arith(op, a, b)
                for a, b in zip(left(cols, idx, env), right(cols, idx, env))
            ]
        if op == "LIKE":
            return lambda cols, idx, env: [
                sql_like(a, b)
                for a, b in zip(left(cols, idx, env), right(cols, idx, env))
            ]
        return None

    def _value_between(self, expr: ast.Between) -> Optional[VecValueFn]:
        operand = self.compile_value(expr.operand)
        low = self.compile_value(expr.low)
        high = self.compile_value(expr.high)
        if operand is None or low is None or high is None:
            return None
        negated = expr.negated

        def run(cols, idx, env):
            out = []
            for v, lo, hi in zip(
                operand(cols, idx, env), low(cols, idx, env), high(cols, idx, env)
            ):
                result = tv_and(
                    sql_compare(">=", v, lo), sql_compare("<=", v, hi)
                )
                out.append(tv_not(result) if negated else result)
            return out

        return run

    def _value_in_list(self, expr: ast.InList) -> Optional[VecValueFn]:
        operand = self.compile_value(expr.operand)
        items = [self.compile_value(item) for item in expr.items]
        if operand is None or any(item is None for item in items):
            return None
        negated = expr.negated

        def run(cols, idx, env):
            value_vec = operand(cols, idx, env)
            item_vecs = [item(cols, idx, env) for item in items]  # type: ignore[misc]
            out = []
            for row_pos, value in enumerate(value_vec):
                result: Optional[bool] = False
                for item_vec in item_vecs:
                    result = tv_or(
                        result, sql_compare("=", value, item_vec[row_pos])
                    )
                    if result is True:
                        break
                out.append(tv_not(result) if negated else result)
            return out

        return run

    def _value_func(self, expr: ast.FuncCall) -> Optional[VecValueFn]:
        if expr.is_aggregate:
            return None
        args = [self.compile_value(arg) for arg in expr.args]
        if any(arg is None for arg in args):
            return None
        name = expr.name
        if name.startswith("CAST_"):
            type_name = name[5:]
            arg0 = args[0]
            return lambda cols, idx, env: [
                cast_value(type_name, v) for v in arg0(cols, idx, env)  # type: ignore[misc]
            ]
        impl = _SCALAR_IMPLS.get(name)
        if impl is None:
            return None

        def run(cols, idx, env):
            arg_vecs = [arg(cols, idx, env) for arg in args]  # type: ignore[misc]
            return [impl(list(row_args)) for row_args in zip(*arg_vecs)] if arg_vecs else [
                impl([]) for _ in idx
            ]

        return run

    # -- helpers ---------------------------------------------------------------

    def _column_position(self, expr: ast.Expr) -> Optional[int]:
        if isinstance(expr, QGMColumnRef):
            return self.layout.get((expr.quantifier, expr.column))
        return None

    def _const_fetch(self, expr: ast.Expr) -> Optional[Callable[[List[Dict]], Any]]:
        """A per-batch fetcher for row-independent operands (literal/param)."""
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda env: value
        if isinstance(expr, ast.Parameter):
            ctx = self.context
            if ctx is None:
                return None
            slot = expr.index
            return lambda env: ctx.params[slot]
        if isinstance(expr, OuterRef):
            lookup = _compile_outer_ref((expr.quantifier, expr.column))
            return lambda env: lookup((), env)
        return None
