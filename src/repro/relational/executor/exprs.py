"""Expression compilation: QGM expressions → Python closures.

A compiled expression is a function ``fn(row, env)`` where *row* is the
current operator's tuple and *env* is the environment stack — a list of
``{(quantifier, column): value}`` dicts pushed by enclosing queries (for
correlated subqueries) and by the XNF path-expression evaluator.

Compiling once and evaluating many times is what makes tuple-at-a-time
execution tolerable in Python; it also mirrors Starburst's "query refinement"
stage, which emits an executable plan rather than re-interpreting QGM.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError, TypeCheckError
from repro.relational.qgm.model import OuterRef, QGMColumnRef, SubqueryExpr
from repro.relational.sql import ast
from repro.relational.types import (
    sql_arith,
    sql_compare,
    sql_like,
    tv_and,
    tv_not,
    tv_or,
)

#: Maps (quantifier, column) to a tuple position.
Layout = Dict[Tuple[str, str], int]

CompiledExpr = Callable[[Tuple[Any, ...], List[Dict]], Any]


class PlanContext:
    """Shared mutable state of one compiled plan.

    ``params`` is the bind-parameter vector: compiled ``Parameter`` closures
    read slots of this list at evaluation time, so a cached plan is re-run
    with new constants by assigning ``params[:]`` — no recompilation.

    ``epoch`` is bumped once per top-level execution; the uncorrelated
    subquery memos below key on it, so they are computed once per execution
    but never leak results across executions of a cached plan (the
    underlying data may have changed in between).
    """

    __slots__ = ("params", "epoch")

    def __init__(self, params: Optional[List[Any]] = None):
        self.params: List[Any] = params if params is not None else []
        self.epoch = 0

    def bump(self) -> None:
        self.epoch += 1


class ExprCompiler:
    """Compiles resolved expressions against a row layout.

    ``subplan_factory(box)`` must return an object with
    ``rows(env) -> iterator of tuples`` — the planner provides this to
    execute subquery boxes.  ``precomputed`` maps an expression's SQL text to
    a tuple position; the aggregate operator uses it to route aggregate
    results and group keys into final head expressions.
    """

    def __init__(
        self,
        layout: Layout,
        subplan_factory: Optional[Callable[[Any], Any]] = None,
        precomputed: Optional[Dict[str, int]] = None,
        context: Optional[PlanContext] = None,
    ):
        self.layout = layout
        self.subplan_factory = subplan_factory
        self.precomputed = precomputed or {}
        self.context = context

    def compile(self, expr: ast.Expr) -> CompiledExpr:
        pre = self.precomputed.get(expr.to_sql())
        if pre is not None:
            pos = pre
            return lambda row, env: row[pos]
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda row, env: value
        if isinstance(expr, ast.Parameter):
            ctx = self.context
            if ctx is None:
                raise ExecutionError(
                    f"bind parameter {expr.to_sql()} outside a prepared statement"
                )
            idx = expr.index
            return lambda row, env: ctx.params[idx]
        if isinstance(expr, QGMColumnRef):
            key = (expr.quantifier, expr.column)
            if key not in self.layout:
                raise ExecutionError(
                    f"column {expr.to_sql()} not in row layout {sorted(self.layout)}"
                )
            pos = self.layout[key]
            return lambda row, env: row[pos]
        if isinstance(expr, OuterRef):
            key = (expr.quantifier, expr.column)
            return _compile_outer_ref(key)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self.compile(expr.operand)
            if expr.op == "NOT":
                return lambda row, env: tv_not(operand(row, env))
            if expr.op == "-":
                def negate(row, env):
                    value = operand(row, env)
                    return None if value is None else -value

                return negate
            raise TypeCheckError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.IsNull):
            operand = self.compile(expr.operand)
            if expr.negated:
                return lambda row, env: operand(row, env) is not None
            return lambda row, env: operand(row, env) is None
        if isinstance(expr, ast.Between):
            return self._compile_between(expr)
        if isinstance(expr, ast.InList):
            return self._compile_in_list(expr)
        if isinstance(expr, SubqueryExpr):
            return self._compile_subquery(expr)
        if isinstance(expr, ast.FuncCall):
            return self._compile_func(expr)
        if isinstance(expr, ast.Case):
            return self._compile_case(expr)
        raise TypeCheckError(f"cannot compile expression {expr!r}")

    def compile_predicate(self, expr: ast.Expr) -> CompiledExpr:
        """Compile to a filter: returns truthiness (None counts as False)."""
        inner = self.compile(expr)
        return lambda row, env: inner(row, env) is True

    # -- node-specific compilers -------------------------------------------------

    def _compile_binary(self, expr: ast.BinaryOp) -> CompiledExpr:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "AND":
            return lambda row, env: tv_and(left(row, env), right(row, env))
        if op == "OR":
            return lambda row, env: tv_or(left(row, env), right(row, env))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda row, env: sql_compare(op, left(row, env), right(row, env))
        if op in ("+", "-", "*", "/", "%", "||"):
            return lambda row, env: sql_arith(op, left(row, env), right(row, env))
        if op == "LIKE":
            return lambda row, env: sql_like(left(row, env), right(row, env))
        raise TypeCheckError(f"unknown binary operator {op!r}")

    def _compile_between(self, expr: ast.Between) -> CompiledExpr:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def run(row, env):
            value = operand(row, env)
            result = tv_and(
                sql_compare(">=", value, low(row, env)),
                sql_compare("<=", value, high(row, env)),
            )
            return tv_not(result) if negated else result

        return run

    def _compile_in_list(self, expr: ast.InList) -> CompiledExpr:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def run(row, env):
            value = operand(row, env)
            result: Optional[bool] = False
            for item in items:
                result = tv_or(result, sql_compare("=", value, item(row, env)))
                if result is True:
                    break
            return tv_not(result) if negated else result

        return run

    def _compile_subquery(self, expr: SubqueryExpr) -> CompiledExpr:
        if self.subplan_factory is None:
            raise ExecutionError("subquery found but no subplan factory given")
        from repro.relational.qgm.model import collect_outer_refs

        subplan = self.subplan_factory(expr.box)
        correlated = expr.correlated
        negated = expr.negated
        # Bindings of the *current* row the subquery needs: push them as an
        # environment frame so OuterRef lookups resolve per outer row.
        corr_keys = [
            key for key in sorted(collect_outer_refs(expr.box)) if key in self.layout
        ]
        positions = [self.layout[key] for key in corr_keys]

        if corr_keys:

            def sub_env(row, env):
                frame = {
                    key: row[pos] for key, pos in zip(corr_keys, positions)
                }
                return env + [frame]

        else:

            def sub_env(row, env):
                return env

        # Uncorrelated subqueries are memoized once per execution epoch: the
        # memo survives the rows of one execution but is recomputed when a
        # cached plan is re-run (its data may have changed in between).
        ctx = self.context

        def memo_valid(memo: Dict[str, Any]) -> bool:
            epoch = ctx.epoch if ctx is not None else 0
            return memo.get("epoch") == epoch and "value" in memo

        def memo_store(memo: Dict[str, Any], value: Any) -> None:
            memo["epoch"] = ctx.epoch if ctx is not None else 0
            memo["value"] = value

        if expr.kind == "EXISTS":
            cache: Dict[str, Any] = {}

            def run_exists(row, env):
                if not correlated and memo_valid(cache):
                    found = cache["value"]
                else:
                    found = any(True for _ in subplan.rows(sub_env(row, env)))
                    if not correlated:
                        memo_store(cache, found)
                return (not found) if negated else found

            return run_exists
        if expr.kind == "IN":
            operand = self.compile(expr.operand)
            cache: Dict[str, Any] = {}

            def run_in(row, env):
                value = operand(row, env)
                if value is None:
                    return None
                if not correlated and memo_valid(cache):
                    values, has_null = cache["value"]
                else:
                    values = set()
                    has_null = False
                    for sub_row in subplan.rows(sub_env(row, env)):
                        if sub_row[0] is None:
                            has_null = True
                        else:
                            values.add(sub_row[0])
                    if not correlated:
                        memo_store(cache, (values, has_null))
                if value in values:
                    result: Optional[bool] = True
                elif has_null:
                    result = None
                else:
                    result = False
                return tv_not(result) if negated else result

            return run_in
        if expr.kind == "SCALAR":
            cache: Dict[str, Any] = {}

            def run_scalar(row, env):
                if not correlated and memo_valid(cache):
                    return cache["value"]
                result = None
                seen = False
                for sub_row in subplan.rows(sub_env(row, env)):
                    if seen:
                        raise ExecutionError("scalar subquery returned > 1 row")
                    result = sub_row[0]
                    seen = True
                if not correlated:
                    memo_store(cache, result)
                return result

            return run_scalar
        raise TypeCheckError(f"unknown subquery kind {expr.kind!r}")

    def _compile_func(self, expr: ast.FuncCall) -> CompiledExpr:
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name} outside GROUP BY context: {expr.to_sql()}"
            )
        args = [self.compile(arg) for arg in expr.args]
        name = expr.name
        if name.startswith("CAST_"):
            return _compile_cast(name[5:], args[0])
        impl = _SCALAR_IMPLS.get(name)
        if impl is None:
            raise TypeCheckError(f"unknown function {name!r}")
        return lambda row, env: impl([arg(row, env) for arg in args])

    def _compile_case(self, expr: ast.Case) -> CompiledExpr:
        whens = [
            (self.compile(cond), self.compile(result)) for cond, result in expr.whens
        ]
        else_fn = (
            self.compile(expr.else_result) if expr.else_result is not None else None
        )

        def run(row, env):
            for cond, result in whens:
                if cond(row, env) is True:
                    return result(row, env)
            if else_fn is not None:
                return else_fn(row, env)
            return None

        return run


def _compile_outer_ref(key: Tuple[str, str]) -> CompiledExpr:
    def run(row, env):
        for frame in reversed(env):
            if key in frame:
                return frame[key]
        raise ExecutionError(f"unbound outer reference {key[0]}.{key[1]}")

    return run


def _compile_cast(type_name: str, arg: CompiledExpr) -> CompiledExpr:
    def run(row, env):
        value = arg(row, env)
        if value is None:
            return None
        try:
            if type_name in ("INTEGER", "INT", "BIGINT", "SMALLINT"):
                return int(float(value)) if isinstance(value, str) else int(value)
            if type_name in ("FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC"):
                return float(value)
            if type_name in ("VARCHAR", "CHAR", "TEXT", "STRING"):
                if isinstance(value, bool):
                    return "TRUE" if value else "FALSE"
                return str(value)
            if type_name in ("BOOLEAN", "BOOL"):
                return bool(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(f"CAST to {type_name} failed: {exc}") from exc
        raise TypeCheckError(f"unknown CAST target {type_name}")

    return run


def _scalar_abs(args):
    return None if args[0] is None else abs(args[0])


def _scalar_lower(args):
    return None if args[0] is None else str(args[0]).lower()


def _scalar_upper(args):
    return None if args[0] is None else str(args[0]).upper()


def _scalar_length(args):
    return None if args[0] is None else len(str(args[0]))


def _scalar_coalesce(args):
    for value in args:
        if value is not None:
            return value
    return None


def _scalar_nullif(args):
    if len(args) != 2:
        raise TypeCheckError("NULLIF takes two arguments")
    return None if args[0] == args[1] else args[0]


def _scalar_round(args):
    if args[0] is None:
        return None
    digits = args[1] if len(args) > 1 and args[1] is not None else 0
    return round(args[0], int(digits))


def _scalar_mod(args):
    if args[0] is None or args[1] is None:
        return None
    return sql_arith("%", args[0], args[1])


def _scalar_substr(args):
    if args[0] is None or args[1] is None:
        return None
    text = str(args[0])
    start = int(args[1]) - 1  # SQL is 1-based
    if len(args) > 2 and args[2] is not None:
        return text[start : start + int(args[2])]
    return text[start:]


_SCALAR_IMPLS = {
    "ABS": _scalar_abs,
    "LOWER": _scalar_lower,
    "UPPER": _scalar_upper,
    "LENGTH": _scalar_length,
    "COALESCE": _scalar_coalesce,
    "NULLIF": _scalar_nullif,
    "ROUND": _scalar_round,
    "MOD": _scalar_mod,
    "SUBSTR": _scalar_substr,
}
