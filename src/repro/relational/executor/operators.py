"""Physical plan operators.

Every operator is *re-iterable*: ``rows(env)`` starts a fresh scan, so the
same plan object can serve as a correlated subplan executed once per outer
row (with a different environment each time).  Operators hold only compiled
closures and child operators — never per-run state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.types import sort_key

Row = Tuple[Any, ...]
Env = List[Dict]
RowFn = Callable[[Row, Env], Any]


class PlanOp:
    """Base class: re-iterable row source with an explain tree."""

    label = "plan"

    def rows(self, env: Env) -> Iterator[Row]:
        raise NotImplementedError

    def children(self) -> List["PlanOp"]:
        return []

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


def _mvcc_state(table):
    """``(store, snapshot)`` when MVCC snapshot resolution applies to
    *table* right now, else None.  Virtual tables (no ``_mvcc_read_state``)
    and the fast path (MVCC off / no ambient snapshot / no versioned rows)
    all return None, keeping the common case allocation-free.

    Index scans need MVCC care beyond Table.scan(): index entries reflect
    the *latest* row versions, so a probe must (a) resolve each RID through
    ``fetch_visible`` and re-verify the key on the resolved image (the
    visible version may predate a key change), and (b) supplement with
    versioned rows the index no longer points at under this key (deleted
    rows, or rows whose indexed key changed after the snapshot).
    """
    probe = getattr(table, "_mvcc_read_state", None)
    return probe() if probe is not None else None


class SeqScan(PlanOp):
    """Full scan of a base table; optionally emits the RID as column 0."""

    def __init__(self, table, emit_rid: bool = False):
        self.table = table
        self.emit_rid = emit_rid
        self.label = f"SeqScan({table.name})"

    def rows(self, env: Env) -> Iterator[Row]:
        if self.emit_rid:
            for rid, row in self.table.scan():
                yield (rid,) + row
        else:
            for _, row in self.table.scan():
                yield row


class IndexEqScan(PlanOp):
    """Equality lookup via an index; key values may depend only on env."""

    def __init__(self, table, index, key_fns: Sequence[RowFn], emit_rid: bool = False):
        self.table = table
        self.index = index
        self.key_fns = list(key_fns)
        self.emit_rid = emit_rid
        self.label = f"IndexEqScan({table.name}.{index.name})"

    def rows(self, env: Env) -> Iterator[Row]:
        key = tuple(fn((), env) for fn in self.key_fns)
        if any(component is None for component in key):
            return
        state = _mvcc_state(self.table)
        if state is None:
            for rid in self.index.search(key):
                row = self.table.fetch(rid)
                yield ((rid,) + row) if self.emit_rid else row
            return
        store, snap = state
        positions = self.index.column_positions
        seen = set()
        for rid in self.index.search(key):
            seen.add(rid)
            row = self.table.fetch_visible(rid)
            if row is None or tuple(row[p] for p in positions) != key:
                continue
            yield ((rid,) + row) if self.emit_rid else row
        for rid, row in store.candidates(self.table.name, snap, seen):
            if tuple(row[p] for p in positions) == key:
                yield ((rid,) + row) if self.emit_rid else row


class IndexRangeScan(PlanOp):
    """Range scan over a B+-tree index (single-column bounds)."""

    def __init__(
        self,
        table,
        index,
        low_fn: Optional[RowFn],
        high_fn: Optional[RowFn],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        emit_rid: bool = False,
    ):
        self.table = table
        self.index = index
        self.low_fn = low_fn
        self.high_fn = high_fn
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.emit_rid = emit_rid
        self.label = f"IndexRangeScan({table.name}.{index.name})"

    def rows(self, env: Env) -> Iterator[Row]:
        low = high = None
        if self.low_fn is not None:
            value = self.low_fn((), env)
            if value is None:
                return
            low = (value,)
        if self.high_fn is not None:
            value = self.high_fn((), env)
            if value is None:
                return
            high = (value,)
        state = _mvcc_state(self.table)
        if state is None:
            for _, rid in self.index.range_scan(
                low, high, self.low_inclusive, self.high_inclusive
            ):
                row = self.table.fetch(rid)
                yield ((rid,) + row) if self.emit_rid else row
            return
        store, snap = state
        pos = self.index.column_positions[0]
        seen = set()
        for _, rid in self.index.range_scan(
            low, high, self.low_inclusive, self.high_inclusive
        ):
            seen.add(rid)
            row = self.table.fetch_visible(rid)
            if row is None or not self._in_bounds(row[pos], low, high):
                continue
            yield ((rid,) + row) if self.emit_rid else row
        for rid, row in store.candidates(self.table.name, snap, seen):
            if self._in_bounds(row[pos], low, high):
                yield ((rid,) + row) if self.emit_rid else row

    def _in_bounds(self, value, low, high) -> bool:
        """Re-verify the range predicate on a snapshot-resolved image."""
        if value is None:
            return False
        key = sort_key(value)
        if low is not None:
            lo = sort_key(low[0])
            if key < lo or (key == lo and not self.low_inclusive):
                return False
        if high is not None:
            hi = sort_key(high[0])
            if key > hi or (key == hi and not self.high_inclusive):
                return False
        return True


class ValuesOp(PlanOp):
    """Constant row source."""

    def __init__(self, rows_: List[Row]):
        self._rows = rows_
        self.label = f"Values({len(rows_)} rows)"

    def rows(self, env: Env) -> Iterator[Row]:
        return iter(self._rows)


class Filter(PlanOp):
    def __init__(self, child: PlanOp, predicate: RowFn, label: str = ""):
        self.child = child
        self.predicate = predicate
        self.label = f"Filter({label})" if label else "Filter"

    def rows(self, env: Env) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.rows(env):
            if predicate(row, env) is True:
                yield row

    def children(self) -> List[PlanOp]:
        return [self.child]


class Project(PlanOp):
    def __init__(self, child: PlanOp, exprs: Sequence[RowFn], label: str = ""):
        self.child = child
        self.exprs = list(exprs)
        self.label = f"Project({label})" if label else "Project"

    def rows(self, env: Env) -> Iterator[Row]:
        exprs = self.exprs
        for row in self.child.rows(env):
            yield tuple(fn(row, env) for fn in exprs)

    def children(self) -> List[PlanOp]:
        return [self.child]


class NestedLoopJoin(PlanOp):
    """Tuple nested-loop join; the inner side is materialised per run."""

    def __init__(
        self,
        left: PlanOp,
        right: PlanOp,
        predicate: Optional[RowFn],
        kind: str = "INNER",
        right_width: int = 0,
    ):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.kind = kind
        self.right_width = right_width
        self.label = f"NestedLoopJoin[{kind}]"

    def rows(self, env: Env) -> Iterator[Row]:
        inner = list(self.right.rows(env))
        predicate = self.predicate
        pad = (None,) * self.right_width
        for left_row in self.left.rows(env):
            matched = False
            for right_row in inner:
                combined = left_row + right_row
                if predicate is None or predicate(combined, env) is True:
                    matched = True
                    yield combined
            if not matched and self.kind == "LEFT":
                yield left_row + pad

    def children(self) -> List[PlanOp]:
        return [self.left, self.right]


class HashJoin(PlanOp):
    """Equi-join; builds a hash table on the right input per run."""

    def __init__(
        self,
        left: PlanOp,
        right: PlanOp,
        left_keys: Sequence[RowFn],
        right_keys: Sequence[RowFn],
        residual: Optional[RowFn] = None,
        kind: str = "INNER",
        right_width: int = 0,
    ):
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.kind = kind
        self.right_width = right_width
        self.label = f"HashJoin[{kind}]"

    def rows(self, env: Env) -> Iterator[Row]:
        table: Dict[Tuple, List[Row]] = {}
        for right_row in self.right.rows(env):
            key = tuple(fn(right_row, env) for fn in self.right_keys)
            if any(component is None for component in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(right_row)
        residual = self.residual
        pad = (None,) * self.right_width
        for left_row in self.left.rows(env):
            key = tuple(fn(left_row, env) for fn in self.left_keys)
            matched = False
            if not any(component is None for component in key):
                for right_row in table.get(key, ()):  # type: ignore[arg-type]
                    combined = left_row + right_row
                    if residual is None or residual(combined, env) is True:
                        matched = True
                        yield combined
            if not matched and self.kind == "LEFT":
                yield left_row + pad

    def children(self) -> List[PlanOp]:
        return [self.left, self.right]


class IndexNLJoin(PlanOp):
    """Index nested-loop join: per outer row, probe an inner-table index."""

    def __init__(
        self,
        left: PlanOp,
        table,
        index,
        key_fns: Sequence[RowFn],
        residual: Optional[RowFn] = None,
        kind: str = "INNER",
        right_width: int = 0,
    ):
        self.left = left
        self.table = table
        self.index = index
        self.key_fns = list(key_fns)
        self.residual = residual
        self.kind = kind
        self.right_width = right_width
        self.label = f"IndexNLJoin[{kind}]({table.name}.{index.name})"

    def rows(self, env: Env) -> Iterator[Row]:
        residual = self.residual
        pad = (None,) * self.right_width
        state = _mvcc_state(self.table)
        if state is None:
            for left_row in self.left.rows(env):
                key = tuple(fn(left_row, env) for fn in self.key_fns)
                matched = False
                if not any(component is None for component in key):
                    for rid in self.index.search(key):
                        combined = left_row + self.table.fetch(rid)
                        if residual is None or residual(combined, env) is True:
                            matched = True
                            yield combined
                if not matched and self.kind == "LEFT":
                    yield left_row + pad
            return
        store, snap = state
        positions = self.index.column_positions
        name = self.table.name
        for left_row in self.left.rows(env):
            key = tuple(fn(left_row, env) for fn in self.key_fns)
            matched = False
            if not any(component is None for component in key):
                seen = set()
                for rid in self.index.search(key):
                    seen.add(rid)
                    row = self.table.fetch_visible(rid)
                    if row is None or tuple(row[p] for p in positions) != key:
                        continue
                    combined = left_row + row
                    if residual is None or residual(combined, env) is True:
                        matched = True
                        yield combined
                for rid, row in store.candidates(name, snap, seen):
                    if tuple(row[p] for p in positions) != key:
                        continue
                    combined = left_row + row
                    if residual is None or residual(combined, env) is True:
                        matched = True
                        yield combined
            if not matched and self.kind == "LEFT":
                yield left_row + pad

    def children(self) -> List[PlanOp]:
        return [self.left]


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class AggSpec:
    """One aggregate to compute: kind, argument, DISTINCT flag."""

    def __init__(self, kind: str, arg_fn: Optional[RowFn], distinct: bool = False):
        self.kind = kind
        self.arg_fn = arg_fn  # None for COUNT(*)
        self.distinct = distinct


class _Accumulator:
    __slots__ = ("spec", "count", "total", "minimum", "maximum", "seen")

    def __init__(self, spec: AggSpec):
        self.spec = spec
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: Optional[set] = set() if spec.distinct else None

    def add(self, row: Row, env: Env) -> None:
        spec = self.spec
        if spec.arg_fn is None:  # COUNT(*)
            self.count += 1
            return
        value = spec.arg_fn(row, env)
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if spec.kind in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif spec.kind == "MIN":
            if self.minimum is None or sort_key(value) < sort_key(self.minimum):
                self.minimum = value
        elif spec.kind == "MAX":
            if self.maximum is None or sort_key(value) > sort_key(self.maximum):
                self.maximum = value

    def add_value(self, value: Any) -> None:
        """Accumulate an already-evaluated argument (the vectorized path:
        the batch aggregate extracts argument vectors and feeds values
        directly, skipping the per-row closure call)."""
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        kind = self.spec.kind
        if kind in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif kind == "MIN":
            if self.minimum is None or sort_key(value) < sort_key(self.minimum):
                self.minimum = value
        elif kind == "MAX":
            if self.maximum is None or sort_key(value) > sort_key(self.maximum):
                self.maximum = value

    def result(self) -> Any:
        kind = self.spec.kind
        if kind == "COUNT":
            return self.count
        if kind == "SUM":
            return self.total
        if kind == "AVG":
            if self.count == 0:
                return None
            return self.total / self.count
        if kind == "MIN":
            return self.minimum
        if kind == "MAX":
            return self.maximum
        raise ExecutionError(f"unknown aggregate {kind}")


class HashAggregate(PlanOp):
    """Hash grouping.

    Internal rows have layout ``group_keys + aggregate_results``; the final
    ``head_fns`` and ``having_fns`` are compiled against that layout by the
    planner (via the expression compiler's *precomputed* map).
    """

    def __init__(
        self,
        child: PlanOp,
        key_fns: Sequence[RowFn],
        agg_specs: Sequence[AggSpec],
        head_fns: Sequence[RowFn],
        having_fns: Sequence[RowFn] = (),
        global_group: bool = False,
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.agg_specs = list(agg_specs)
        self.head_fns = list(head_fns)
        self.having_fns = list(having_fns)
        self.global_group = global_group
        self.label = f"HashAggregate(keys={len(key_fns)}, aggs={len(agg_specs)})"

    def rows(self, env: Env) -> Iterator[Row]:
        groups: Dict[Tuple, List[_Accumulator]] = {}
        order: List[Tuple] = []
        for row in self.child.rows(env):
            key = tuple(fn(row, env) for fn in self.key_fns)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(spec) for spec in self.agg_specs]
                groups[key] = accs
                order.append(key)
            for acc in accs:
                acc.add(row, env)
        if not groups and self.global_group:
            key = ()
            groups[key] = [_Accumulator(spec) for spec in self.agg_specs]
            order.append(key)
        for key in order:
            internal = key + tuple(acc.result() for acc in groups[key])
            if any(fn(internal, env) is not True for fn in self.having_fns):
                continue
            yield tuple(fn(internal, env) for fn in self.head_fns)

    def children(self) -> List[PlanOp]:
        return [self.child]


# ---------------------------------------------------------------------------
# Ordering, limiting, duplicate handling, set operations
# ---------------------------------------------------------------------------


class Sort(PlanOp):
    def __init__(self, child: PlanOp, key_fns: Sequence[RowFn], ascending: Sequence[bool]):
        self.child = child
        self.key_fns = list(key_fns)
        self.ascending = list(ascending)
        self.label = "Sort"

    def rows(self, env: Env) -> Iterator[Row]:
        data = list(self.child.rows(env))
        # Stable multi-key sort: apply keys right-to-left.
        for key_fn, asc in reversed(list(zip(self.key_fns, self.ascending))):
            data.sort(key=lambda row: sort_key(key_fn(row, env)), reverse=not asc)
        return iter(data)

    def children(self) -> List[PlanOp]:
        return [self.child]


class Limit(PlanOp):
    def __init__(self, child: PlanOp, limit: Optional[int], offset: Optional[int]):
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.label = f"Limit({limit}, offset={offset or 0})"

    def rows(self, env: Env) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child.rows(env):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def children(self) -> List[PlanOp]:
        return [self.child]


class Distinct(PlanOp):
    def __init__(self, child: PlanOp):
        self.child = child
        self.label = "Distinct"

    def rows(self, env: Env) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows(env):
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> List[PlanOp]:
        return [self.child]


class SetOp(PlanOp):
    """UNION / INTERSECT / EXCEPT with SQL bag semantics for ALL variants."""

    def __init__(self, op: str, all: bool, left: PlanOp, right: PlanOp):
        self.op = op
        self.all = all
        self.left = left
        self.right = right
        self.label = f"{op}{' ALL' if all else ''}"

    def rows(self, env: Env) -> Iterator[Row]:
        if self.op == "UNION":
            if self.all:
                yield from self.left.rows(env)
                yield from self.right.rows(env)
                return
            seen = set()
            for source in (self.left, self.right):
                for row in source.rows(env):
                    if row not in seen:
                        seen.add(row)
                        yield row
            return
        right_counts: Dict[Row, int] = {}
        for row in self.right.rows(env):
            right_counts[row] = right_counts.get(row, 0) + 1
        if self.op == "INTERSECT":
            emitted: Dict[Row, int] = {}
            for row in self.left.rows(env):
                available = right_counts.get(row, 0)
                used = emitted.get(row, 0)
                if self.all:
                    if used < available:
                        emitted[row] = used + 1
                        yield row
                else:
                    if available and not used:
                        emitted[row] = 1
                        yield row
            return
        if self.op == "EXCEPT":
            if self.all:
                consumed: Dict[Row, int] = {}
                for row in self.left.rows(env):
                    used = consumed.get(row, 0)
                    if used < right_counts.get(row, 0):
                        consumed[row] = used + 1
                        continue
                    yield row
            else:
                emitted_set = set()
                for row in self.left.rows(env):
                    if row in right_counts or row in emitted_set:
                        continue
                    emitted_set.add(row)
                    yield row
            return
        raise ExecutionError(f"unknown set operation {self.op}")

    def children(self) -> List[PlanOp]:
        return [self.left, self.right]


class Materialize(PlanOp):
    """Caches child rows — keyed by nothing, so only safe for env-independent
    children (the planner inserts it under uncorrelated reuse points, e.g.
    the XNF common-subexpression node)."""

    def __init__(self, child: PlanOp):
        self.child = child
        self._cache: Optional[List[Row]] = None
        self.label = "Materialize"

    def rows(self, env: Env) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child.rows(env))
        return iter(self._cache)

    def invalidate(self) -> None:
        self._cache = None

    def children(self) -> List[PlanOp]:
        return [self.child]
