"""Query executor: row-at-a-time and vectorized batch pipelines.

Physical operators come in two interchangeable families producing
identical results:

* Row pipeline (:mod:`~repro.relational.executor.operators`): operators
  consume and produce plain Python tuples; expressions are compiled to
  closures over tuple positions (:mod:`~repro.relational.executor.exprs`).
  Correlated subqueries run as parameterised subplans against an
  environment stack, memoised when uncorrelated.
* Batch pipeline (:mod:`~repro.relational.executor.vectorized`):
  operators exchange :class:`~repro.relational.executor.batch.Batch`
  column vectors (~1024 rows) with selection vectors; filter and value
  expressions are compiled once per plan to whole-column kernels
  (:mod:`~repro.relational.executor.batch`).  The planner picks the
  pipeline per subtree (cost-based under ``auto`` mode) and bridges the
  two with ``RowSource`` / ``VecOp.rows()``.

All column resolution happens at plan-compile time in both pipelines.
"""

from repro.relational.executor.exprs import ExprCompiler, Layout
from repro.relational.executor import operators
from repro.relational.executor.batch import BATCH_SIZE, Batch
from repro.relational.executor import vectorized

__all__ = [
    "ExprCompiler",
    "Layout",
    "operators",
    "BATCH_SIZE",
    "Batch",
    "vectorized",
]
