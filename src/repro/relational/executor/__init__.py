"""Iterator-based query executor.

Physical operators (:mod:`~repro.relational.executor.operators`) consume and
produce plain Python tuples; all column resolution happens at plan-compile
time, when expressions are compiled to closures over tuple positions
(:mod:`~repro.relational.executor.exprs`).  Correlated subqueries are run as
parameterised subplans against an environment stack, memoised when
uncorrelated.
"""

from repro.relational.executor.exprs import ExprCompiler, Layout
from repro.relational.executor import operators

__all__ = ["ExprCompiler", "Layout", "operators"]
