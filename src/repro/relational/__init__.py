"""Starburst-like relational DBMS substrate.

This subpackage implements the relational engine that SQL/XNF extends:
storage (slotted pages, buffer pool, heap files), indexes, a SQL front end,
the Query Graph Model (QGM), a rewrite engine, a cost-based optimizer, an
iterator-based executor, and transaction management.  The XNF layer
(:mod:`repro.xnf`) compiles composite-object queries down to this engine,
exactly as the paper compiles XNF into Starburst.
"""

from repro.relational.types import (
    SQLType,
    INTEGER,
    FLOAT,
    VARCHAR,
    BOOLEAN,
    Null,
)

__all__ = ["Database", "SQLType", "INTEGER", "FLOAT", "VARCHAR", "BOOLEAN", "Null"]


def __getattr__(name: str):
    # Lazy import: engine pulls in the whole pipeline; keep light imports fast.
    if name == "Database":
        from repro.relational.engine import Database

        return Database
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
