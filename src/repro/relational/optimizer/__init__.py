"""Cost-based plan optimizer.

Selinger-style: per SELECT box, choose access paths (sequential scan vs
index equality/range scan), then a left-deep join order by dynamic
programming over quantifier subsets, picking hash-, index-nested-loop- or
nested-loop joins per edge.  Statistics come from ``ANALYZE``
(:meth:`repro.relational.catalog.Table.analyze`); defaults apply otherwise.

The paper's point that "no significant change is required in the plan
optimization" for XNF holds here by construction: the XNF semantic rewrite
produces ordinary boxes, and this module never sees anything else.
"""

from repro.relational.optimizer.planner import Planner, CompiledPlan

__all__ = ["Planner", "CompiledPlan"]
