"""QGM → physical plan compilation with cost-based join ordering.

For each :class:`SelectBox` the planner

1. chooses an access path per base-table quantifier (index equality scan,
   index range scan, or sequential scan + filter),
2. orders inner joins with left-deep dynamic programming over quantifier
   subsets (greedy beyond :data:`DP_THRESHOLD` quantifiers), choosing hash,
   index-nested-loop or nested-loop per edge,
3. applies outer joins in declaration order, then residual predicates
   (including subquery predicates, compiled as correlated subplans),
4. projects the head and applies DISTINCT.

GroupBy, SetOp, Top and Values boxes compile structurally.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.relational.catalog import Catalog, Table
from repro.relational.executor.batch import gather
from repro.relational.executor.exprs import (
    ExprCompiler,
    Layout,
    PlanContext,
    VecExprCompiler,
    VecValueFn,
)
from repro.relational.executor.operators import (
    AggSpec,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    IndexEqScan,
    IndexNLJoin,
    IndexRangeScan,
    Limit,
    NestedLoopJoin,
    PlanOp,
    Project,
    SeqScan,
    SetOp,
    Sort,
    ValuesOp,
)
from repro.relational.executor.vectorized import (
    VecDistinct,
    VecFilter,
    VecHashAggregate,
    VecHashJoin,
    VecLimit,
    VecOp,
    VecProject,
    VecSeqScan,
    VecSort,
    as_batch_source,
)
from repro.relational.optimizer.stats import (
    join_selectivity,
    predicate_selectivity,
)
from repro.relational.qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterRef,
    QGMColumnRef,
    Quantifier,
    SelectBox,
    SetOpBox,
    SubqueryExpr,
    TopBox,
    ValuesBox,
    collect_outer_refs,
    has_subquery,
    referenced_quantifiers,
    walk_resolved,
)
from repro.relational.sql import ast

#: Max quantifiers for exhaustive left-deep DP; greedy beyond this.
DP_THRESHOLD = 8

#: In executor mode "auto", sequential scans switch to the vectorized path
#: only when the table is at least this large — below it, per-batch setup
#: outweighs the per-row savings.  Mode "batch" vectorizes unconditionally.
VEC_MIN_ROWS = 64

#: Per-row CPU cost factors (arbitrary units; only ratios matter).
_SEQ_ROW_COST = 0.01
_NL_ROW_COST = 0.005
_INDEX_PROBE_COST = 1.5
#: Cost of materialising one matched row out of an index nested-loop join
#: (buffer fetch + pin/unpin per match).  Charging matches — not just
#: probes — keeps IndexNLJoin from looking free on low-selectivity joins
#: where each probe fans out into many fetched rows.
_FETCH_ROW_COST = 0.05
#: CPU discount for join inputs that run through the vectorized pipeline:
#: batch loops amortise interpreter dispatch, so a VecHashJoin's per-row
#: cost is a fraction of the tuple-at-a-time estimate.
_VEC_ROW_DISCOUNT = 0.3


@dataclass
class CompiledPlan:
    """A runnable plan plus its output column names.

    ``context`` is set on statement-level plans (the roots handed to the
    engine): it carries the bind-parameter vector and the execution epoch.
    Each ``rows()`` call on such a plan starts a new epoch, so per-execution
    subquery memos never serve stale results when the plan is cached and
    re-run later.
    """

    op: PlanOp
    columns: List[str]
    context: Optional[PlanContext] = None
    #: serializes bind-parameters + execution on cached plans shared by
    #: concurrent session threads (engine holds it across bind + collect)
    bind_lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def rows(self, env: Optional[list] = None):
        if self.context is not None:
            self.context.bump()
        return self.op.rows(env if env is not None else [])

    def batches(self, env: Optional[list] = None):
        """Batch-at-a-time root iterator; only valid when ``op`` is a VecOp."""
        if self.context is not None:
            self.context.bump()
        return self.op.batches(env if env is not None else [])


@dataclass
class _Partial:
    """DP table entry: a partial left-deep join covering *names*."""

    names: frozenset
    op: PlanOp
    layout: Layout
    width: int
    est_rows: float
    cost: float
    applied: Set[int] = field(default_factory=set)  # indexes of applied preds


@dataclass
class _QuantInfo:
    quantifier: Quantifier
    columns: List[str]
    base_table: Optional[Table] = None
    derived: Optional[CompiledPlan] = None

    @property
    def name(self) -> str:
        return self.quantifier.name

    @property
    def width(self) -> int:
        return len(self.columns)


class Planner:
    """Compiles QGM box trees into executable plans."""

    def __init__(
        self,
        catalog: Catalog,
        context: Optional[PlanContext] = None,
        feedback=None,
        mode: str = "row",
    ):
        self.catalog = catalog
        self.context = context if context is not None else PlanContext()
        self._subplan_cache: Dict[int, PlanOp] = {}
        #: optional FeedbackRegistry (estimate-vs-actual corrections); when
        #: set, base access paths replace their selectivity guess with the
        #: cardinality previously *observed* for the same normalized
        #: predicate on the same table (``Database(optimizer_feedback=True)``).
        self.feedback = feedback
        #: executor mode: "row" never vectorizes, "batch" always does (where
        #: semantically possible), "auto" applies the :data:`VEC_MIN_ROWS`
        #: cost threshold per scan.  Physical *join/order* choices are made
        #: by the same cost model in every mode — vectorization only swaps
        #: the implementation of the operator the cost model picked, so row
        #: and batch plans always have the same shape.
        if mode not in ("row", "auto", "batch"):
            raise ExecutionError(f"unknown executor mode {mode!r}")
        self.mode = mode
        #: per-SELECT-box vectorization flag, maintained by _plan_select
        #: (False inside boxes that are correlated or touch SYS_* tables).
        self._vec_active = mode != "row"

    # -- vectorization gates ------------------------------------------------------

    def _vec_allowed(self, box: SelectBox) -> bool:
        """Whether *box* may compile to batch operators.

        Correlated boxes (any outer reference, including inside nested
        subqueries) and boxes reading virtual SYS_* tables stay on the row
        pipeline: the former run once per outer row where batch setup is
        pure overhead, the latter must re-pull their snapshot provider on
        every scan.
        """
        if self.mode == "row":
            return False
        if collect_outer_refs(box):
            return False
        for quant in box.quantifiers:
            if isinstance(quant.box, BaseTableBox) and self.catalog.is_virtual(
                quant.box.table_name
            ):
                return False
        return True

    def _table_vectorizable(self, table) -> bool:
        """Table-level gate: virtual tables never, small tables only in
        mode "batch" (mode "auto" applies the VEC_MIN_ROWS threshold)."""
        if self.mode == "row" or table is None:
            return False
        if getattr(table, "is_virtual", False):
            return False
        if self.mode == "auto" and max(table.stats.row_count, 1) < VEC_MIN_ROWS:
            return False
        return True

    def _vec_scan_ok(self, table) -> bool:
        return self._vec_active and self._table_vectorizable(table)

    # -- public API -----------------------------------------------------------

    def plan_statement(self, box: Box) -> CompiledPlan:
        """Plan a statement root: the returned plan owns this planner's
        context (parameter vector + execution epoch)."""
        plan = self.plan_box(box)
        plan.context = self.context
        return plan

    def plan_box(self, box: Box) -> CompiledPlan:
        if isinstance(box, SelectBox):
            return self._plan_select(box)
        if isinstance(box, GroupByBox):
            return self._plan_group_by(box)
        if isinstance(box, SetOpBox):
            left = self.plan_box(box.left)
            right = self.plan_box(box.right)
            return CompiledPlan(
                SetOp(box.op, box.all, left.op, right.op), left.columns
            )
        if isinstance(box, TopBox):
            return self._plan_top(box)
        if isinstance(box, BaseTableBox):
            table = self.catalog.get_table(box.table_name)
            if self._table_vectorizable(table):
                return CompiledPlan(VecSeqScan(table), list(box.columns))
            return CompiledPlan(SeqScan(table), list(box.columns))
        if isinstance(box, ValuesBox):
            return CompiledPlan(ValuesOp(box.rows), box.output_columns())
        raise ExecutionError(f"cannot plan box {box!r}")

    def subplan_factory(self, box: Box) -> PlanOp:
        """Compile-once cache used for subquery boxes inside expressions."""
        cached = self._subplan_cache.get(box.id)
        if cached is None:
            cached = self.plan_box(box).op
            self._subplan_cache[box.id] = cached
        return cached

    def compiler(self, layout: Layout, precomputed: Optional[Dict[str, int]] = None) -> ExprCompiler:
        return ExprCompiler(layout, self.subplan_factory, precomputed, self.context)

    def vec_compiler(self, layout: Layout) -> VecExprCompiler:
        return VecExprCompiler(layout, self.context)

    # -- SELECT boxes -------------------------------------------------------------

    def _plan_select(self, box: SelectBox) -> CompiledPlan:
        prev_vec = self._vec_active
        self._vec_active = self._vec_allowed(box)
        try:
            return self._plan_select_inner(box)
        finally:
            self._vec_active = prev_vec

    def _plan_select_inner(self, box: SelectBox) -> CompiledPlan:
        infos = [self._quant_info(quant) for quant in box.quantifiers]
        by_name = {info.name: info for info in infos}
        outer_names = [name for name, _ in box.outer_joins]
        inner_infos = [info for info in infos if info.name not in outer_names]

        # Classify WHERE predicates.
        single_preds: Dict[str, List[ast.Expr]] = {}
        join_preds: List[Tuple[ast.Expr, frozenset]] = []
        residual_preds: List[ast.Expr] = []
        for pred in box.predicates:
            refs = frozenset(referenced_quantifiers(pred))
            if has_subquery(pred) or any(name in outer_names for name in refs):
                residual_preds.append(pred)
            elif len(refs) <= 1:
                target = next(iter(refs)) if refs else (
                    inner_infos[0].name if inner_infos else None
                )
                if target is None:
                    residual_preds.append(pred)
                else:
                    single_preds.setdefault(target, []).append(pred)
            else:
                join_preds.append((pred, refs))

        if not infos:
            partial = _Partial(frozenset(), ValuesOp([()]), {}, 0, 1.0, 0.0)
        elif inner_infos:
            partial = self._order_joins(inner_infos, single_preds, join_preds)
        else:
            raise ExecutionError("outer joins require at least one inner table")

        # Outer joins, in declaration order.
        for name, on_preds in box.outer_joins:
            partial = self._apply_outer_join(
                partial, by_name[name], on_preds, single_preds.get(name, [])
            )

        # Residual predicates (subqueries, post-outer-join filters).
        if residual_preds:
            conj = ast.conjoin(residual_preds)  # type: ignore[arg-type]
            filter_op: Optional[PlanOp] = None
            if isinstance(partial.op, VecOp):
                sel_fn = self.vec_compiler(partial.layout).compile_filter(conj)
                if sel_fn is not None:
                    filter_op = VecFilter(partial.op, sel_fn, "residual")
            if filter_op is None:
                compiler = self.compiler(partial.layout)
                predicate = compiler.compile_predicate(conj)
                filter_op = Filter(partial.op, predicate, "residual")
            partial = _Partial(
                partial.names,
                filter_op,
                partial.layout,
                partial.width,
                partial.est_rows * 0.5,
                partial.cost,
            )

        # Head projection: vectorized when the child produces batches and
        # every head expression compiles to a vector closure.
        names = ", ".join(col.name for col in box.head)
        op: Optional[PlanOp] = None
        if isinstance(partial.op, VecOp):
            vec_head = [
                self.vec_compiler(partial.layout).compile_value(col.expr)
                for col in box.head
            ]
            if all(vfn is not None for vfn in vec_head):
                op = VecProject(partial.op, vec_head, names)  # type: ignore[arg-type]
        if op is None:
            compiler = self.compiler(partial.layout)
            head_fns = [compiler.compile(col.expr) for col in box.head]
            op = Project(partial.op, head_fns, names)
        if box.distinct:
            op = VecDistinct(op) if isinstance(op, VecOp) else Distinct(op)
        return CompiledPlan(op, box.output_columns())

    def _quant_info(self, quant: Quantifier) -> _QuantInfo:
        if isinstance(quant.box, BaseTableBox):
            table = self.catalog.get_table(quant.box.table_name)
            return _QuantInfo(quant, table.column_names(), base_table=table)
        derived = self.plan_box(quant.box)
        return _QuantInfo(quant, derived.columns, derived=derived)

    # -- access paths ---------------------------------------------------------------

    def _access_path(
        self, info: _QuantInfo, preds: Sequence[ast.Expr]
    ) -> _Partial:
        """Best single-quantifier plan with *preds* applied."""
        layout = {(info.name, col): pos for pos, col in enumerate(info.columns)}
        if info.base_table is None:
            op: PlanOp = info.derived.op  # type: ignore[union-attr]
            est = self._estimate_box(info.quantifier.box)
            cost = est * _SEQ_ROW_COST * 2
            remaining = list(preds)
        else:
            op, est, cost, remaining = self._base_access_path(info, list(preds))
        for pred in preds:
            est *= predicate_selectivity(pred, info.base_table)
        est = max(est, 0.5)
        predicate_key = ""
        if info.base_table is not None and preds:
            predicate_key = self._predicate_key(preds)
            if self.feedback is not None:
                observed = self.feedback.lookup_rows(
                    info.base_table.name, predicate_key
                )
                if observed is not None:
                    est = max(float(observed), 0.5)
        vec_scan = (
            isinstance(op, SeqScan)
            and not op.emit_rid
            and self._vec_scan_ok(info.base_table)
        )
        if remaining:
            conj = ast.conjoin(remaining)  # type: ignore[arg-type]
            sel_fn = None
            if vec_scan or isinstance(op, VecOp):
                sel_fn = self.vec_compiler(layout).compile_filter(conj)
            if sel_fn is not None:
                source = VecSeqScan(info.base_table) if vec_scan else op
                op = VecFilter(source, sel_fn, info.name)  # type: ignore[arg-type]
            else:
                compiler = self.compiler(layout)
                predicate = compiler.compile_predicate(conj)
                op = Filter(op, predicate, info.name)
        elif vec_scan:
            op = VecSeqScan(info.base_table)
        # Estimate annotations for EXPLAIN ANALYZE's estimate-vs-actual
        # feedback (SYS_STAT_ESTIMATES): which table/predicate this access
        # path's cardinality guess belongs to.
        op.est_rows = est
        if info.base_table is not None:
            op.feedback_source = info.base_table.name
            op.feedback_predicate = predicate_key
        return _Partial(frozenset([info.name]), op, layout, info.width, est, cost)

    @staticmethod
    def _predicate_key(preds: Sequence[ast.Expr]) -> str:
        """Order-insensitive normalized text of an access path's predicates.

        Cached compiles see parameter markers where literals stood, so the
        key aggregates feedback across literal-differing statements.
        """
        return " AND ".join(sorted(pred.to_sql() for pred in preds))

    def _base_access_path(
        self, info: _QuantInfo, preds: List[ast.Expr]
    ) -> Tuple[PlanOp, float, float, List[ast.Expr]]:
        table = info.base_table
        assert table is not None
        rows = max(table.stats.row_count, 1)
        # Try an equality predicate with a matching index.
        for pred in preds:
            binding = self._const_eq_binding(pred, info.name)
            if binding is None:
                continue
            column, const_expr = binding
            index = table.index_on([column])
            if index is None:
                continue
            key_fn = self.compiler({}).compile(const_expr)
            op = IndexEqScan(table, index, [key_fn])
            remaining = [p for p in preds if p is not pred]
            est = rows * predicate_selectivity(pred, table)
            return op, rows, _INDEX_PROBE_COST + est, remaining
        # Try range predicates with a B+-tree index.
        range_plan = self._range_access_path(info, preds)
        if range_plan is not None:
            return range_plan
        cost = table.stats.page_count + rows * _SEQ_ROW_COST
        return SeqScan(table), rows, cost, preds

    def _range_access_path(
        self, info: _QuantInfo, preds: List[ast.Expr]
    ) -> Optional[Tuple[PlanOp, float, float, List[ast.Expr]]]:
        table = info.base_table
        assert table is not None
        bounds: Dict[str, Dict[str, Tuple[ast.Expr, bool, ast.Expr]]] = {}
        for pred in preds:
            bound = self._const_range_binding(pred, info.name)
            if bound is None:
                continue
            column, side, const_expr, inclusive = bound
            bounds.setdefault(column, {})[side] = (const_expr, inclusive, pred)
        for column, sides in bounds.items():
            index = table.index_on([column], require_range=True)
            if index is None:
                continue
            low = sides.get("low")
            high = sides.get("high")
            low_fn = self.compiler({}).compile(low[0]) if low else None
            high_fn = self.compiler({}).compile(high[0]) if high else None
            op = IndexRangeScan(
                table,
                index,
                low_fn,
                high_fn,
                low[1] if low else True,
                high[1] if high else True,
            )
            used = {id(side[2]) for side in (low, high) if side is not None}
            remaining = [p for p in preds if id(p) not in used]
            rows = max(table.stats.row_count, 1)
            est = rows * (0.25 if len(used) == 2 else 1.0 / 3.0)
            return op, rows, _INDEX_PROBE_COST + est, remaining
        return None

    def _const_eq_binding(
        self, pred: ast.Expr, qname: str
    ) -> Optional[Tuple[str, ast.Expr]]:
        """Match ``q.col = <expr without local refs>`` (either side)."""
        if not (isinstance(pred, ast.BinaryOp) and pred.op == "="):
            return None
        for side, other in ((pred.left, pred.right), (pred.right, pred.left)):
            if (
                isinstance(side, QGMColumnRef)
                and side.quantifier == qname
                and not referenced_quantifiers(other)
                and not has_subquery(other)
            ):
                return side.column, other
        return None

    def _const_range_binding(
        self, pred: ast.Expr, qname: str
    ) -> Optional[Tuple[str, str, ast.Expr, bool]]:
        """Match ``q.col < const`` etc.; returns (col, 'low'/'high', expr, incl)."""
        if not isinstance(pred, ast.BinaryOp):
            return None
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        if pred.op not in flip:
            return None
        left, right, op = pred.left, pred.right, pred.op
        if (
            isinstance(right, QGMColumnRef)
            and right.quantifier == qname
            and not referenced_quantifiers(left)
        ):
            left, right, op = right, left, flip[op]
        if not (
            isinstance(left, QGMColumnRef)
            and left.quantifier == qname
            and not referenced_quantifiers(right)
            and not has_subquery(right)
        ):
            return None
        if op in ("<", "<="):
            return left.column, "high", right, op == "<="
        return left.column, "low", right, op == ">="

    # -- join ordering -----------------------------------------------------------

    def _order_joins(
        self,
        infos: List[_QuantInfo],
        single_preds: Dict[str, List[ast.Expr]],
        join_preds: List[Tuple[ast.Expr, frozenset]],
    ) -> _Partial:
        singles = {
            info.name: self._access_path(info, single_preds.get(info.name, []))
            for info in infos
        }
        by_name = {info.name: info for info in infos}
        if len(infos) == 1:
            only = singles[infos[0].name]
            return self._apply_remaining_preds(only, join_preds)
        if len(infos) <= DP_THRESHOLD:
            best = self._dp_join_order(infos, singles, by_name, join_preds)
        else:
            best = self._greedy_join_order(infos, singles, by_name, join_preds)
        return self._apply_remaining_preds(best, join_preds)

    def _dp_join_order(
        self,
        infos: List[_QuantInfo],
        singles: Dict[str, _Partial],
        by_name: Dict[str, _QuantInfo],
        join_preds: List[Tuple[ast.Expr, frozenset]],
    ) -> _Partial:
        names = [info.name for info in infos]
        table: Dict[frozenset, _Partial] = {
            frozenset([name]): singles[name] for name in names
        }
        for size in range(2, len(names) + 1):
            for combo in itertools.combinations(names, size):
                subset = frozenset(combo)
                best: Optional[_Partial] = None
                for name in combo:
                    left_set = subset - {name}
                    left = table.get(left_set)
                    if left is None:
                        continue
                    candidate = self._join(
                        left, by_name[name], singles[name], join_preds
                    )
                    if best is None or candidate.cost < best.cost:
                        best = candidate
                if best is not None:
                    table[subset] = best
        return table[frozenset(names)]

    def _greedy_join_order(
        self,
        infos: List[_QuantInfo],
        singles: Dict[str, _Partial],
        by_name: Dict[str, _QuantInfo],
        join_preds: List[Tuple[ast.Expr, frozenset]],
    ) -> _Partial:
        remaining = {info.name for info in infos}
        # Seed on cost + emitted cardinality, not cost alone: an access
        # path's cost is computed from catalog stats and never updated when
        # optimizer feedback overrides est_rows, so seeding purely on cost
        # could start the greedy chain from a quantifier feedback already
        # proved huge.  est_rows *is* feedback-corrected, so charging each
        # emitted row at the sequential rate keeps the seed honest.
        start = min(
            remaining,
            key=lambda name: singles[name].cost
            + singles[name].est_rows * _SEQ_ROW_COST,
        )
        current = singles[start]
        remaining.discard(start)
        while remaining:
            best_name = None
            best_candidate: Optional[_Partial] = None
            for name in remaining:
                candidate = self._join(current, by_name[name], singles[name], join_preds)
                if best_candidate is None or candidate.cost < best_candidate.cost:
                    best_candidate = candidate
                    best_name = name
            assert best_candidate is not None and best_name is not None
            current = best_candidate
            remaining.discard(best_name)
        return current

    def _join(
        self,
        left: _Partial,
        right_info: _QuantInfo,
        right_single: _Partial,
        join_preds: List[Tuple[ast.Expr, frozenset]],
    ) -> _Partial:
        """Join *left* with quantifier *right_info*, applying newly-covered
        join predicates; picks the cheapest physical method."""
        name = right_info.name
        combined_names = left.names | {name}
        applicable: List[Tuple[int, ast.Expr]] = []
        for idx, (pred, refs) in enumerate(join_preds):
            if idx in left.applied:
                continue
            if refs <= combined_names and name in refs and refs & left.names:
                applicable.append((idx, pred))
        # Split equi preds (left-expr = right-expr) from residual preds.
        equi: List[Tuple[ast.Expr, ast.Expr]] = []  # (left_key, right_key)
        residual: List[ast.Expr] = []
        for _, pred in applicable:
            pair = self._equi_split(pred, left.names, name)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(pred)

        new_layout = dict(left.layout)
        for pos, col in enumerate(right_info.columns):
            new_layout[(name, col)] = left.width + pos
        new_width = left.width + right_info.width

        selectivity = 1.0
        right_table = right_info.base_table
        for _, pred in applicable:
            selectivity *= join_selectivity(pred, None, right_table)
        est_rows = max(left.est_rows * right_single.est_rows * selectivity, 0.5)

        combined_compiler = self.compiler(new_layout)
        residual_fn = (
            combined_compiler.compile_predicate(ast.conjoin(residual))
            if residual
            else None
        )

        candidates: List[Tuple[float, Callable[[], PlanOp]]] = []
        if equi:
            left_compiler = self.compiler(left.layout)
            right_layout = {
                (name, col): pos for pos, col in enumerate(right_info.columns)
            }
            right_compiler = self.compiler(right_layout)
            left_keys = [left_compiler.compile(lk) for lk, _ in equi]
            right_keys = [right_compiler.compile(rk) for _, rk in equi]
            vec_keys = self._vec_join_keys(
                equi, left, right_single, right_layout, residual_fn
            )
            per_row = _SEQ_ROW_COST * (
                _VEC_ROW_DISCOUNT if vec_keys is not None else 1.0
            )
            hash_cost = (
                left.cost
                + right_single.cost
                + (left.est_rows + right_single.est_rows) * per_row
            )
            if vec_keys is not None:
                vec_left_keys, vec_right_keys = vec_keys
                candidates.append(
                    (
                        hash_cost,
                        lambda: VecHashJoin(
                            as_batch_source(left.op, left.width),
                            as_batch_source(right_single.op, right_info.width),
                            vec_left_keys,
                            vec_right_keys,
                            "INNER",
                            right_info.width,
                        ),
                    )
                )
            else:
                candidates.append(
                    (
                        hash_cost,
                        lambda: HashJoin(
                            left.op,
                            right_single.op,
                            left_keys,
                            right_keys,
                            residual_fn,
                            "INNER",
                            right_info.width,
                        ),
                    )
                )
            # Index nested loop: single-column equi key with an index.
            if right_table is not None and len(equi) >= 1:
                first_rk = equi[0][1]
                if isinstance(first_rk, QGMColumnRef):
                    index = right_table.index_on([first_rk.column])
                    if index is not None:
                        extra = residual
                        if len(equi) > 1:
                            extra = residual + [
                                ast.BinaryOp("=", lk, rk) for lk, rk in equi[1:]
                            ]
                        inl_residual = (
                            combined_compiler.compile_predicate(ast.conjoin(extra))
                            if extra
                            else None
                        )
                        probe_key = left_keys[0]
                        inl_cost = (
                            left.cost
                            + left.est_rows * _INDEX_PROBE_COST
                            + est_rows * _FETCH_ROW_COST
                        )
                        candidates.append(
                            (
                                inl_cost,
                                lambda: IndexNLJoin(
                                    left.op,
                                    right_table,
                                    index,
                                    [probe_key],
                                    inl_residual,
                                    "INNER",
                                    right_info.width,
                                ),
                            )
                        )
        nl_pred = (
            combined_compiler.compile_predicate(
                ast.conjoin([p for _, p in applicable])
            )
            if applicable
            else None
        )
        nl_cost = (
            left.cost
            + right_single.cost
            + left.est_rows * right_single.est_rows * _NL_ROW_COST
        )
        candidates.append(
            (
                nl_cost,
                lambda: NestedLoopJoin(
                    left.op, right_single.op, nl_pred, "INNER", right_info.width
                ),
            )
        )
        cost, build = min(candidates, key=lambda pair: pair[0])
        applied = set(left.applied)
        applied.update(idx for idx, _ in applicable)
        join_op = build()
        join_op.est_rows = est_rows
        return _Partial(
            combined_names, join_op, new_layout, new_width, est_rows, cost, applied
        )

    def _vec_join_keys(
        self,
        equi: List[Tuple[ast.Expr, ast.Expr]],
        left: _Partial,
        right_single: _Partial,
        right_layout: Layout,
        residual_fn,
    ) -> Optional[Tuple[List[VecValueFn], List[VecValueFn]]]:
        """Vector key closures for a hash join, or None to keep the row join.

        A VecHashJoin is built only for pure equi-joins (no residual — its
        per-left-row match bookkeeping does not columnarise cleanly) where
        at least one input already produces batches and every key expression
        vectorizes; otherwise the row HashJoin runs (it consumes either
        input through ``rows()`` unchanged).
        """
        if not self._vec_active or residual_fn is not None:
            return None
        if not (isinstance(left.op, VecOp) or isinstance(right_single.op, VecOp)):
            return None
        left_vc = self.vec_compiler(left.layout)
        right_vc = self.vec_compiler(right_layout)
        left_keys = [left_vc.compile_value(lk) for lk, _ in equi]
        right_keys = [right_vc.compile_value(rk) for _, rk in equi]
        if any(fn is None for fn in left_keys) or any(
            fn is None for fn in right_keys
        ):
            return None
        return left_keys, right_keys  # type: ignore[return-value]

    def _equi_split(
        self, pred: ast.Expr, left_names: frozenset, right_name: str
    ) -> Optional[Tuple[ast.Expr, ast.Expr]]:
        if not (isinstance(pred, ast.BinaryOp) and pred.op == "="):
            return None
        left_refs = referenced_quantifiers(pred.left)
        right_refs = referenced_quantifiers(pred.right)
        if left_refs and left_refs <= left_names and right_refs == {right_name}:
            return pred.left, pred.right
        if right_refs and right_refs <= left_names and left_refs == {right_name}:
            return pred.right, pred.left
        return None

    def _apply_remaining_preds(
        self, partial: _Partial, join_preds: List[Tuple[ast.Expr, frozenset]]
    ) -> _Partial:
        """Safety net: any join predicate not yet applied becomes a filter."""
        leftover = [
            pred
            for idx, (pred, refs) in enumerate(join_preds)
            if idx not in partial.applied and refs <= partial.names
        ]
        if not leftover:
            return partial
        compiler = self.compiler(partial.layout)
        predicate = compiler.compile_predicate(
            ast.conjoin(leftover)  # type: ignore[arg-type]
        )
        return _Partial(
            partial.names,
            Filter(partial.op, predicate, "leftover"),
            partial.layout,
            partial.width,
            partial.est_rows * 0.5,
            partial.cost,
            partial.applied,
        )

    def _apply_outer_join(
        self,
        left: _Partial,
        right_info: _QuantInfo,
        on_preds: List[ast.Expr],
        where_preds: List[ast.Expr],
    ) -> _Partial:
        """LEFT OUTER JOIN *right_info* onto *left* with the ON predicates.

        ON predicates referencing only the right side are pushed into its
        access path; WHERE predicates on the right side must run *after*
        null-extension, so they come back as residual filters above the join.
        """
        name = right_info.name
        pushed = [
            pred
            for pred in on_preds
            if referenced_quantifiers(pred) <= {name} and not has_subquery(pred)
        ]
        join_conds = [pred for pred in on_preds if pred not in pushed]
        right_single = self._access_path(right_info, pushed)

        new_layout = dict(left.layout)
        for pos, col in enumerate(right_info.columns):
            new_layout[(name, col)] = left.width + pos
        new_width = left.width + right_info.width
        combined_compiler = self.compiler(new_layout)

        equi: List[Tuple[ast.Expr, ast.Expr]] = []
        residual: List[ast.Expr] = []
        for pred in join_conds:
            pair = self._equi_split(pred, left.names, name)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(pred)
        if equi:
            left_keys = [self.compiler(left.layout).compile(lk) for lk, _ in equi]
            right_layout = {
                (name, col): pos for pos, col in enumerate(right_info.columns)
            }
            right_keys = [self.compiler(right_layout).compile(rk) for _, rk in equi]
            residual_fn = (
                combined_compiler.compile_predicate(ast.conjoin(residual))
                if residual
                else None
            )
            vec_keys = self._vec_join_keys(
                equi, left, right_single, right_layout, residual_fn
            )
            op: PlanOp
            if vec_keys is not None:
                op = VecHashJoin(
                    as_batch_source(left.op, left.width),
                    as_batch_source(right_single.op, right_info.width),
                    vec_keys[0],
                    vec_keys[1],
                    "LEFT",
                    right_info.width,
                )
            else:
                op = HashJoin(
                    left.op,
                    right_single.op,
                    left_keys,
                    right_keys,
                    residual_fn,
                    "LEFT",
                    right_info.width,
                )
        else:
            pred_fn = (
                combined_compiler.compile_predicate(ast.conjoin(join_conds))
                if join_conds
                else None
            )
            op = NestedLoopJoin(
                left.op, right_single.op, pred_fn, "LEFT", right_info.width
            )
        est = max(left.est_rows, left.est_rows * right_single.est_rows * 0.1)
        cost = left.cost + right_single.cost + est * _SEQ_ROW_COST
        partial = _Partial(
            left.names | {name}, op, new_layout, new_width, est, cost, left.applied
        )
        if where_preds:
            predicate = combined_compiler.compile_predicate(
                ast.conjoin(where_preds)  # type: ignore[arg-type]
            )
            partial = _Partial(
                partial.names,
                Filter(partial.op, predicate, f"post-outer({name})"),
                partial.layout,
                partial.width,
                partial.est_rows * 0.5,
                partial.cost,
                partial.applied,
            )
        return partial

    # -- GROUP BY ----------------------------------------------------------------

    def _plan_group_by(self, box: GroupByBox) -> CompiledPlan:
        assert box.input is not None
        child = self.plan_box(box.input.box)
        qname = box.input.name
        child_layout = {
            (qname, col): pos for pos, col in enumerate(child.columns)
        }
        child_compiler = self.compiler(child_layout)
        key_fns = [child_compiler.compile(key) for key in box.group_keys]

        # Collect unique aggregate calls across head and having.
        agg_exprs: List[ast.FuncCall] = []
        seen_sql: Set[str] = set()
        for expr in [col.expr for col in box.head] + list(box.having):
            for node in walk_resolved(expr):
                if isinstance(node, ast.FuncCall) and node.is_aggregate:
                    sql = node.to_sql()
                    if sql not in seen_sql:
                        seen_sql.add(sql)
                        agg_exprs.append(node)
        agg_specs = []
        for agg in agg_exprs:
            if agg.star:
                agg_specs.append(AggSpec("COUNT", None))
            else:
                arg_fn = child_compiler.compile(agg.args[0])
                agg_specs.append(AggSpec(agg.name, arg_fn, agg.distinct))

        precomputed: Dict[str, int] = {}
        for pos, key in enumerate(box.group_keys):
            precomputed.setdefault(key.to_sql(), pos)
        for offset, agg in enumerate(agg_exprs):
            precomputed[agg.to_sql()] = len(box.group_keys) + offset

        final_compiler = self.compiler({}, precomputed)
        head_fns = [final_compiler.compile(col.expr) for col in box.head]
        having_fns = [final_compiler.compile_predicate(p) for p in box.having]
        op: Optional[PlanOp] = None
        if isinstance(child.op, VecOp):
            vec = self._vec_agg_inputs(child_layout, box.group_keys, agg_exprs)
            if vec is not None:
                op = VecHashAggregate(
                    child.op,
                    vec[0],
                    vec[1],
                    agg_specs,
                    head_fns,
                    having_fns,
                    global_group=not box.group_keys,
                )
        if op is None:
            op = HashAggregate(
                child.op,
                key_fns,
                agg_specs,
                head_fns,
                having_fns,
                global_group=not box.group_keys,
            )
        return CompiledPlan(op, box.output_columns())

    def _vec_agg_inputs(
        self,
        child_layout: Layout,
        group_keys: Sequence[ast.Expr],
        agg_exprs: Sequence[ast.FuncCall],
    ) -> Optional[Tuple[List[VecValueFn], List[Optional[VecValueFn]]]]:
        """Vector closures for grouping keys and aggregate arguments, or
        None when any of them fails to vectorize (COUNT(*) yields a None
        slot — the batch aggregate bumps its counter directly)."""
        vec_compiler = self.vec_compiler(child_layout)
        key_vfns = [vec_compiler.compile_value(key) for key in group_keys]
        if any(vfn is None for vfn in key_vfns):
            return None
        arg_vfns: List[Optional[VecValueFn]] = []
        for agg in agg_exprs:
            if agg.star:
                arg_vfns.append(None)
                continue
            vfn = vec_compiler.compile_value(agg.args[0])
            if vfn is None:
                return None
            arg_vfns.append(vfn)
        return key_vfns, arg_vfns  # type: ignore[return-value]

    # -- TOP (ORDER BY / LIMIT) -----------------------------------------------------

    def _plan_top(self, box: TopBox) -> CompiledPlan:
        child = self.plan_box(box.child)
        op = child.op
        if box.order_by:
            layout = {
                ("__out__", col): pos for pos, col in enumerate(child.columns)
            }
            compiler = self.compiler(layout)
            key_fns = [compiler.compile(expr) for expr, _ in box.order_by]
            ascending = [asc for _, asc in box.order_by]
            if isinstance(op, VecOp):
                op = VecSort(op, key_fns, ascending)
            else:
                op = Sort(op, key_fns, ascending)
        if box.limit is not None or box.offset is not None:
            if isinstance(op, VecOp):
                op = VecLimit(op, box.limit, box.offset)
            else:
                op = Limit(op, box.limit, box.offset)
        columns = child.columns
        if box.visible is not None and box.visible < len(columns):
            keep = list(range(box.visible))
            if isinstance(op, VecOp):
                op = VecProject(
                    op,
                    [
                        (lambda p: (lambda cols, idx, env: gather(cols[p], idx)))(p)
                        for p in keep
                    ],
                    "trim",
                )
            else:
                op = Project(
                    op,
                    [(lambda p: (lambda row, env: row[p]))(p) for p in keep],
                    "trim",
                )
            columns = columns[: box.visible]
        return CompiledPlan(op, columns)

    # -- cardinality estimation -------------------------------------------------------

    def _estimate_box(self, box: Box) -> float:
        if isinstance(box, BaseTableBox):
            table = self.catalog.get_table(box.table_name)
            return max(table.stats.row_count, 1)
        if isinstance(box, SelectBox):
            est = 1.0
            for quant in box.quantifiers:
                est *= self._estimate_box(quant.box)
            for pred in box.predicates:
                est *= predicate_selectivity(pred, None)
            return max(est, 0.5)
        if isinstance(box, GroupByBox):
            child = self._estimate_box(box.input.box) if box.input else 1.0
            return max(child / 2.0, 1.0) if box.group_keys else 1.0
        if isinstance(box, SetOpBox):
            return self._estimate_box(box.left) + self._estimate_box(box.right)
        if isinstance(box, TopBox):
            est = self._estimate_box(box.child)
            if box.limit is not None:
                est = min(est, box.limit)
            return est
        if isinstance(box, ValuesBox):
            return max(len(box.rows), 1)
        return 100.0
