"""Cardinality and selectivity estimation.

Classic System-R defaults: 1/n_distinct for equality (0.1 when unknown),
1/3 for ranges, 1/4 for LIKE, 1/3 for anything else.  Estimates only steer
join order and access-path choice; execution is always exact.
"""

from __future__ import annotations

from typing import Optional

from repro.relational.catalog import Table
from repro.relational.qgm.model import (
    OuterRef,
    QGMColumnRef,
    SubqueryExpr,
    referenced_quantifiers,
)
from repro.relational.sql import ast

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_OTHER_SELECTIVITY = 1.0 / 3.0


def predicate_selectivity(pred: ast.Expr, table: Optional[Table] = None) -> float:
    """Estimated fraction of rows satisfying *pred*."""
    if isinstance(pred, ast.BinaryOp):
        if pred.op == "=":
            column = _single_column(pred)
            if column is not None and table is not None:
                stats = table.stats.columns.get(column)
                if stats is not None and stats.n_distinct > 0:
                    return 1.0 / stats.n_distinct
            return DEFAULT_EQ_SELECTIVITY
        if pred.op in ("<", "<=", ">", ">="):
            return DEFAULT_RANGE_SELECTIVITY
        if pred.op == "LIKE":
            return DEFAULT_LIKE_SELECTIVITY
        if pred.op == "AND":
            return predicate_selectivity(pred.left, table) * predicate_selectivity(
                pred.right, table
            )
        if pred.op == "OR":
            left = predicate_selectivity(pred.left, table)
            right = predicate_selectivity(pred.right, table)
            return min(1.0, left + right - left * right)
    if isinstance(pred, ast.Between):
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(pred, ast.InList):
        return min(1.0, DEFAULT_EQ_SELECTIVITY * max(1, len(pred.items)))
    if isinstance(pred, ast.IsNull):
        return DEFAULT_EQ_SELECTIVITY
    if isinstance(pred, SubqueryExpr):
        return 0.5
    return DEFAULT_OTHER_SELECTIVITY


def _single_column(pred: ast.BinaryOp) -> Optional[str]:
    """Column name when the predicate is col <op> constant-ish."""
    for side, other in ((pred.left, pred.right), (pred.right, pred.left)):
        if isinstance(side, QGMColumnRef) and isinstance(
            other, (ast.Literal, ast.Parameter, OuterRef)
        ):
            return side.column
    return None


def join_selectivity(
    pred: ast.Expr, left_table: Optional[Table], right_table: Optional[Table]
) -> float:
    """Selectivity of an equi-join predicate: 1/max(distinct counts)."""
    if isinstance(pred, ast.BinaryOp) and pred.op == "=":
        distincts = []
        for table, side in ((left_table, pred.left), (right_table, pred.right)):
            if table is not None and isinstance(side, QGMColumnRef):
                stats = table.stats.columns.get(side.column)
                if stats is not None and stats.n_distinct > 0:
                    distincts.append(stats.n_distinct)
        if distincts:
            return 1.0 / max(distincts)
        return DEFAULT_EQ_SELECTIVITY
    return DEFAULT_OTHER_SELECTIVITY
