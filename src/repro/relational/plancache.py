"""Prepared-plan cache: AST normalization, fingerprints, LRU plan reuse.

The paper's architecture (section 4.3, Fig. 7/8) translates an XNF query
*once* into a set of SQL queries that are then executed many times — per
fixpoint round, per navigation, per refresh.  This module supplies the
engine-side machinery that makes the "once" real:

* :func:`normalize_statement` canonicalizes a statement by lifting the
  literal constants of its WHERE clauses (and JOIN conditions) into a
  parameter vector, so ``WHERE pid = 17`` and ``WHERE pid = 99`` share one
  cache key.  Literals in SELECT lists, GROUP BY, HAVING and ORDER BY are
  left in place — those clauses carry positional/textual matching semantics
  (``ORDER BY 2`` is a column position) and their constants rarely vary
  between repetitions of a hot statement.
* :func:`referenced_objects` extracts the tables and views a statement
  depends on, recursing through derived tables, subqueries and view bodies.
* :class:`PlanCache` is a bounded LRU keyed on the normalized SQL text (plus
  the engine's rewrite flag).  Entries record the catalog version of every
  referenced object at compile time; a later mismatch — caused by CREATE /
  DROP / ALTER-equivalent index changes / ANALYZE — invalidates the entry
  lazily at lookup.

Aggregate counters are also mirrored module-globally so the benchmark
harness can report hit rates across many Database instances.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.relational.catalog import Catalog
from repro.relational.sql import ast

#: Default number of cached plans per Database.
DEFAULT_CAPACITY = 256

#: Process-wide aggregate counters (all PlanCache instances), for benchmarks.
GLOBAL_STATS: Dict[str, int] = {
    "hits": 0,
    "misses": 0,
    "invalidations": 0,
    "evictions": 0,
}


def reset_global_stats() -> None:
    for key in GLOBAL_STATS:
        GLOBAL_STATS[key] = 0


def snapshot_global_stats() -> Dict[str, int]:
    return dict(GLOBAL_STATS)


# ===========================================================================
# Normalization: lift WHERE-clause literals into a parameter vector
# ===========================================================================


@dataclass
class NormalizedStatement:
    """A statement with its constants lifted out.

    ``statement`` contains :class:`ast.Parameter` nodes: indexes
    ``0 .. n_explicit-1`` are the user's own ``?`` placeholders, indexes
    ``n_explicit ..`` hold the lifted literals whose values are in
    ``lifted_values``.  The full bind vector of an execution is
    ``list(user_values) + lifted_values``.
    """

    statement: ast.Statement
    lifted_values: List[Any]
    n_explicit: int

    @property
    def fingerprint(self) -> str:
        return self.statement.to_sql()


class _Lifter:
    """One normalization pass; assigns parameter slots after the explicit ones."""

    def __init__(self, n_explicit: int):
        self.next_index = n_explicit
        self.values: List[Any] = []

    def lift(self, value: Any) -> ast.Parameter:
        param = ast.Parameter(self.next_index)
        self.next_index += 1
        self.values.append(value)
        return param


def count_explicit_parameters(stmt: ast.Statement) -> int:
    """Highest explicit ``?`` ordinal + 1 (0 when the statement has none)."""
    highest = -1

    def visit_expr(expr: Optional[ast.Expr]) -> None:
        nonlocal highest
        if expr is None:
            return
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Parameter):
                highest = max(highest, node.index)
            elif isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                visit_query(node.subquery)

    def visit_table_ref(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.DerivedTable):
            visit_query(ref.subquery)
        elif isinstance(ref, ast.Join):
            visit_table_ref(ref.left)
            visit_table_ref(ref.right)
            visit_expr(ref.condition)

    def visit_query(q: ast.Query) -> None:
        if isinstance(q, ast.SetOpStmt):
            visit_query(q.left)
            visit_query(q.right)
            return
        for item in q.select_items:
            visit_expr(item.expr)
        for ref in q.from_tables:
            visit_table_ref(ref)
        visit_expr(q.where)
        for key in q.group_by:
            visit_expr(key)
        visit_expr(q.having)
        for order in q.order_by:
            visit_expr(order.expr)

    if isinstance(stmt, (ast.SelectStmt, ast.SetOpStmt)):
        visit_query(stmt)
    elif isinstance(stmt, ast.InsertStmt):
        for row in stmt.rows or []:
            for expr in row:
                visit_expr(expr)
        if stmt.select is not None:
            visit_query(stmt.select)
    elif isinstance(stmt, ast.UpdateStmt):
        for _, expr in stmt.assignments:
            visit_expr(expr)
        visit_expr(stmt.where)
    elif isinstance(stmt, ast.DeleteStmt):
        visit_expr(stmt.where)
    return highest + 1


def normalize_statement(stmt: ast.Statement) -> NormalizedStatement:
    """Lift WHERE/JOIN literals of a query or DML statement into parameters.

    The input is not mutated; unaffected sub-trees are shared with the copy.
    Statements that are neither queries nor DML are returned unchanged.
    """
    n_explicit = count_explicit_parameters(stmt)
    lifter = _Lifter(n_explicit)
    if isinstance(stmt, (ast.SelectStmt, ast.SetOpStmt)):
        normalized: ast.Statement = _norm_query(stmt, lifter)
    elif isinstance(stmt, ast.UpdateStmt):
        normalized = ast.UpdateStmt(
            stmt.table,
            stmt.assignments,
            _norm_pred(stmt.where, lifter),
        )
    elif isinstance(stmt, ast.DeleteStmt):
        normalized = ast.DeleteStmt(stmt.table, _norm_pred(stmt.where, lifter))
    elif isinstance(stmt, ast.InsertStmt) and stmt.select is not None:
        normalized = ast.InsertStmt(
            stmt.table, stmt.columns, select=_norm_query(stmt.select, lifter)
        )
    else:
        normalized = stmt
    return NormalizedStatement(normalized, lifter.values, n_explicit)


def _norm_query(q: ast.Query, lifter: _Lifter) -> ast.Query:
    if isinstance(q, ast.SetOpStmt):
        return ast.SetOpStmt(
            q.op,
            q.all,
            _norm_query(q.left, lifter),
            _norm_query(q.right, lifter),
            order_by=q.order_by,
            limit=q.limit,
            offset=q.offset,
        )
    return ast.SelectStmt(
        select_items=[
            ast.SelectItem(_norm_subqueries_only(item.expr, lifter), item.alias)
            for item in q.select_items
        ],
        from_tables=[_norm_table_ref(ref, lifter) for ref in q.from_tables],
        where=_norm_pred(q.where, lifter),
        group_by=q.group_by,
        having=q.having,
        order_by=q.order_by,
        limit=q.limit,
        offset=q.offset,
        distinct=q.distinct,
    )


def _norm_table_ref(ref: ast.TableRef, lifter: _Lifter) -> ast.TableRef:
    if isinstance(ref, ast.DerivedTable):
        return ast.DerivedTable(_norm_query(ref.subquery, lifter), ref.alias)
    if isinstance(ref, ast.Join):
        return ast.Join(
            ref.kind,
            _norm_table_ref(ref.left, lifter),
            _norm_table_ref(ref.right, lifter),
            _norm_pred(ref.condition, lifter),
        )
    return ref


def _norm_pred(expr: Optional[ast.Expr], lifter: _Lifter) -> Optional[ast.Expr]:
    """Normalize a WHERE-position expression: literals become parameters."""
    if expr is None:
        return None
    if isinstance(expr, ast.Literal):
        # NULL keeps its identity: IS NULL / three-valued folding treats it
        # specially and NULL constants never vary between hot repetitions.
        if expr.value is None:
            return expr
        return lifter.lift(expr.value)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _norm_pred(expr.left, lifter),
            _norm_pred(expr.right, lifter),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _norm_pred(expr.operand, lifter))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_norm_pred(expr.operand, lifter), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(
            _norm_pred(expr.operand, lifter),
            _norm_pred(expr.low, lifter),
            _norm_pred(expr.high, lifter),
            expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            _norm_pred(expr.operand, lifter),
            [_norm_pred(item, lifter) for item in expr.items],
            expr.negated,
        )
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(
            _norm_pred(expr.operand, lifter),
            _norm_query(expr.subquery, lifter),
            expr.negated,
        )
    if isinstance(expr, ast.Exists):
        return ast.Exists(_norm_query(expr.subquery, lifter), expr.negated)
    if isinstance(expr, ast.ScalarSubquery):
        return ast.ScalarSubquery(_norm_query(expr.subquery, lifter))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            [_norm_pred(arg, lifter) for arg in expr.args],
            distinct=expr.distinct,
            star=expr.star,
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            [
                (_norm_pred(cond, lifter), _norm_pred(result, lifter))
                for cond, result in expr.whens
            ],
            (
                _norm_pred(expr.else_result, lifter)
                if expr.else_result is not None
                else None
            ),
        )
    # ColumnRef, Parameter, Star, and any resolved QGM nodes pass through.
    return expr


def _norm_subqueries_only(expr: ast.Expr, lifter: _Lifter) -> ast.Expr:
    """In SELECT-list position, literals stay (textual GROUP BY matching)
    but subqueries nested inside still get their WHERE clauses normalized."""
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(
            _norm_subqueries_only(expr.operand, lifter),
            _norm_query(expr.subquery, lifter),
            expr.negated,
        )
    if isinstance(expr, ast.Exists):
        return ast.Exists(_norm_query(expr.subquery, lifter), expr.negated)
    if isinstance(expr, ast.ScalarSubquery):
        return ast.ScalarSubquery(_norm_query(expr.subquery, lifter))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _norm_subqueries_only(expr.left, lifter),
            _norm_subqueries_only(expr.right, lifter),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _norm_subqueries_only(expr.operand, lifter))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            [_norm_subqueries_only(arg, lifter) for arg in expr.args],
            distinct=expr.distinct,
            star=expr.star,
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            [
                (
                    _norm_subqueries_only(cond, lifter),
                    _norm_subqueries_only(result, lifter),
                )
                for cond, result in expr.whens
            ],
            (
                _norm_subqueries_only(expr.else_result, lifter)
                if expr.else_result is not None
                else None
            ),
        )
    return expr


# ===========================================================================
# Dependency extraction
# ===========================================================================


def referenced_objects(stmt: ast.Statement, catalog: Catalog) -> List[str]:
    """Upper-cased names of every table and view *stmt* depends on,
    including the base tables under referenced views."""
    names: List[str] = []
    seen: set = set()

    def add(name: str) -> None:
        key = name.upper()
        if key in seen:
            return
        seen.add(key)
        names.append(key)
        view = catalog.get_view(key)
        if view is not None:
            visit_query(view.body)

    def visit_expr(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        for node in ast.walk_expr(expr):
            if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                visit_query(node.subquery)

    def visit_table_ref(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.NamedTable):
            add(ref.name)
        elif isinstance(ref, ast.DerivedTable):
            visit_query(ref.subquery)
        elif isinstance(ref, ast.Join):
            visit_table_ref(ref.left)
            visit_table_ref(ref.right)
            visit_expr(ref.condition)

    def visit_query(q: ast.Query) -> None:
        if isinstance(q, ast.SetOpStmt):
            visit_query(q.left)
            visit_query(q.right)
            return
        for item in q.select_items:
            visit_expr(item.expr)
        for ref in q.from_tables:
            visit_table_ref(ref)
        visit_expr(q.where)
        for key in q.group_by:
            visit_expr(key)
        visit_expr(q.having)

    if isinstance(stmt, (ast.SelectStmt, ast.SetOpStmt)):
        visit_query(stmt)
    elif isinstance(stmt, ast.InsertStmt):
        add(stmt.table)
        if stmt.select is not None:
            visit_query(stmt.select)
    elif isinstance(stmt, (ast.UpdateStmt, ast.DeleteStmt)):
        add(stmt.table)
        visit_expr(stmt.where)
    return names


# ===========================================================================
# The cache
# ===========================================================================


@dataclass
class CacheEntry:
    plan: Any  # CompiledPlan (typed Any to avoid an import cycle)
    lifted_values: List[Any]
    n_explicit: int
    dependencies: Dict[str, int] = field(default_factory=dict)
    #: the plan scans at least one SYS virtual table.  The *plan* is still
    #: cacheable (virtual tables never bump their catalog version), but the
    #: result set is volatile by construction: every scan re-pulls the live
    #: registry snapshot.  Tracked so stats()/tests can prove SYS queries
    #: hit the cache without ever serving stale rows.
    volatile: bool = False


CacheKey = Tuple[str, bool]  # (normalized SQL text, enable_rewrite)


class PlanCache:
    """Bounded LRU of compiled plans with lazy catalog-version validation."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        # LRU mutation (move_to_end / eviction) and counter updates must be
        # atomic when sessions on several threads share the cache.
        self._mutex = threading.RLock()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: CacheKey, catalog: Catalog) -> Optional[CacheEntry]:
        """Return a still-valid entry for *key*, counting hit or miss.

        An entry is stale when any referenced object was re-created, dropped,
        index-altered or re-analyzed since compile time; stale entries are
        evicted here (lazy invalidation) and counted as invalidations.
        """
        with self._mutex:
            entry = self._entries.get(key)
            if entry is not None:
                for name, version in entry.dependencies.items():
                    if (
                        catalog.object_version(name) != version
                        or not (
                            catalog.has_table(name) or catalog.get_view(name)
                        )
                    ):
                        del self._entries[key]
                        self.invalidations += 1
                        GLOBAL_STATS["invalidations"] += 1
                        entry = None
                        break
            if entry is None:
                self.misses += 1
                GLOBAL_STATS["misses"] += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            GLOBAL_STATS["hits"] += 1
            return entry

    def store(self, key: CacheKey, entry: CacheEntry) -> None:
        with self._mutex:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                GLOBAL_STATS["evictions"] += 1

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def invalidate_all(self) -> int:
        """Drop every entry, counting each as an invalidation.

        Crash recovery calls this: cached plans hold references to Table
        objects whose heaps and indexes were just rebuilt, so none of them
        may survive.  Returns the number of entries dropped.
        """
        with self._mutex:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            GLOBAL_STATS["invalidations"] += dropped
            return dropped

    def stats(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "volatile_entries": sum(
                    1 for entry in self._entries.values() if entry.volatile
                ),
            }
