"""Heap files: unordered per-table row storage over the buffer pool.

A heap file tracks the set of pages that contain at least one of its rows.
Because page slots are tagged with the owning table, several heap files may
share pages — that is how :class:`~repro.relational.storage.cluster.CoCluster`
achieves composite-object clustering without changing the executor.
"""

from __future__ import annotations

from typing import Any, Iterator, List, NamedTuple, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.storage.buffer import BufferPool
from repro.relational.storage.page import Page, estimate_row_size


class RID(NamedTuple):
    """Row identifier: physical address of a row."""

    page_id: int
    slot: int


class HeapFile:
    """Unordered collection of rows belonging to one table."""

    def __init__(self, table: str, buffer_pool: BufferPool):
        self.table = table
        self.buffer_pool = buffer_pool
        self._page_ids: List[int] = []
        self._page_id_set: set[int] = set()
        self.row_count = 0

    # -- write path ----------------------------------------------------------

    def insert(self, row: Tuple[Any, ...]) -> RID:
        """Insert at the end of the file (last page, else a new page)."""
        size = estimate_row_size(row)
        if self._page_ids:
            last_id = self._page_ids[-1]
            page = self.buffer_pool.fetch(last_id)
            if page.can_fit(row, size):
                slot = page.insert(self.table, row, size)
                self.buffer_pool.unpin(last_id, dirty=True)
                self.row_count += 1
                return RID(last_id, slot)
            self.buffer_pool.unpin(last_id)
        page = self.buffer_pool.new_page()
        slot = page.insert(self.table, row, size)
        self.register_page(page.page_id)
        self.buffer_pool.unpin(page.page_id, dirty=True)
        self.row_count += 1
        return RID(page.page_id, slot)

    def append_rows(self, rows: Sequence[Tuple[Any, ...]]) -> List[RID]:
        """Bulk insert at the end of the file.

        Equivalent to :meth:`insert` per row, but the tail page stays pinned
        across consecutive rows instead of being re-fetched for each one —
        the write-side counterpart of the vectorized scan.
        """
        rids: List[RID] = []
        if not rows:
            return rids
        page = None
        page_id = -1
        dirty = False
        if self._page_ids:
            page_id = self._page_ids[-1]
            page = self.buffer_pool.fetch(page_id)
        for row in rows:
            size = estimate_row_size(row)
            if page is None or not page.can_fit(row, size):
                if page is not None:
                    self.buffer_pool.unpin(page_id, dirty=dirty)
                page = self.buffer_pool.new_page()
                page_id = page.page_id
                self.register_page(page_id)
                dirty = False
            slot = page.insert(self.table, row, size)
            dirty = True
            rids.append(RID(page_id, slot))
        self.buffer_pool.unpin(page_id, dirty=dirty)
        self.row_count += len(rows)
        return rids

    def insert_on_page(self, page: Page, row: Tuple[Any, ...]) -> RID:
        """Insert onto a specific (already pinned) page — used by CoCluster."""
        slot = page.insert(self.table, row)
        self.register_page(page.page_id)
        self.row_count += 1
        return RID(page.page_id, slot)

    def update(self, rid: RID, row: Tuple[Any, ...]) -> None:
        page = self.buffer_pool.fetch(rid.page_id)
        try:
            content = page.read(rid.slot)
            if content is None or content[0] != self.table:
                raise ExecutionError(f"update of missing row {rid} in {self.table}")
            page.update(rid.slot, row)
        finally:
            self.buffer_pool.unpin(rid.page_id, dirty=True)

    def delete(self, rid: RID) -> None:
        page = self.buffer_pool.fetch(rid.page_id)
        try:
            content = page.read(rid.slot)
            if content is None or content[0] != self.table:
                raise ExecutionError(f"delete of missing row {rid} in {self.table}")
            page.delete(rid.slot)
        finally:
            self.buffer_pool.unpin(rid.page_id, dirty=True)
        self.row_count -= 1

    # -- read path -----------------------------------------------------------

    def fetch_row(self, rid: RID) -> Tuple[Any, ...]:
        page = self.buffer_pool.fetch(rid.page_id)
        try:
            content = page.read(rid.slot)
            if content is None or content[0] != self.table:
                raise ExecutionError(f"fetch of missing row {rid} in {self.table}")
            return content[1]
        finally:
            self.buffer_pool.unpin(rid.page_id)

    def scan(self) -> Iterator[Tuple[RID, Tuple[Any, ...]]]:
        """Yield (rid, row) for every live row of this table."""
        # Snapshot the page list: concurrent inserts may extend it.
        for page_id in list(self._page_ids):
            page = self.buffer_pool.fetch(page_id)
            try:
                rows = [
                    (RID(page_id, slot), content[1])
                    for slot, content in enumerate(page.slots)
                    if content is not None and content[0] == self.table
                ]
            finally:
                self.buffer_pool.unpin(page_id)
            yield from rows

    def scan_row_chunks(self) -> Iterator[List[Tuple[Any, ...]]]:
        """Yield the live rows one page at a time, without RIDs.

        The vectorized scan transposes these chunks straight into column
        batches; skipping the per-row RID allocation of :meth:`scan` is a
        measurable part of its constant-factor win.
        """
        table = self.table
        for page_id in list(self._page_ids):
            page = self.buffer_pool.fetch(page_id)
            try:
                rows = [
                    content[1]
                    for content in page.slots
                    if content is not None and content[0] == table
                ]
            finally:
                self.buffer_pool.unpin(page_id)
            if rows:
                yield rows

    def page_ids(self) -> List[int]:
        """Point-in-time copy of the page list (concurrent inserts extend it)."""
        return list(self._page_ids)

    def scan_page_rows(self) -> Iterator[Tuple[int, List[Tuple[Any, ...]]]]:
        """Yield ``(page_id, live rows)`` per page — :meth:`scan_row_chunks`
        plus the page id.  MVCC chunk scans use this for clean pages (no
        version entries for the table) and re-read dirty pages with RIDs
        via :meth:`scan_page_pairs`."""
        table = self.table
        for page_id in list(self._page_ids):
            page = self.buffer_pool.fetch(page_id)
            try:
                rows = [
                    content[1]
                    for content in page.slots
                    if content is not None and content[0] == table
                ]
            finally:
                self.buffer_pool.unpin(page_id)
            yield page_id, rows

    def scan_page_pairs(self, page_id: int) -> List[Tuple[RID, Tuple[Any, ...]]]:
        """The ``(rid, row)`` pairs of one page, read under the pin."""
        page = self.buffer_pool.fetch(page_id)
        try:
            return [
                (RID(page_id, slot), content[1])
                for slot, content in enumerate(page.slots)
                if content is not None and content[0] == self.table
            ]
        finally:
            self.buffer_pool.unpin(page_id)

    def register_page(self, page_id: int) -> None:
        if page_id not in self._page_id_set:
            self._page_id_set.add(page_id)
            self._page_ids.append(page_id)

    def num_pages(self) -> int:
        return len(self._page_ids)

    def truncate(self) -> None:
        """Delete all rows of this table.

        Pages the table owns exclusively (the common case — sharing only
        happens under CO clustering) are wiped wholesale; shared pages fall
        back to per-slot tombstoning so co-located rows keep their RIDs.
        """
        table = self.table
        for page_id in list(self._page_ids):
            page = self.buffer_pool.fetch(page_id)
            try:
                slots = page.slots
                if all(c is None or c[0] == table for c in slots):
                    page.clear()
                else:
                    for slot, content in enumerate(slots):
                        if content is not None and content[0] == table:
                            page.delete(slot)
            finally:
                self.buffer_pool.unpin(page_id, dirty=True)
        self._page_ids.clear()
        self._page_id_set.clear()
        self.row_count = 0
