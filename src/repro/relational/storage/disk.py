"""Simulated disk: a flat page array with I/O counters and checksums.

Reads and writes copy the page image, so the buffer pool really is the only
place where live page objects exist — exactly the boundary a clustering
experiment needs to count.

Every write stores a CRC32 of the page image next to it; every read
verifies it, so a torn or corrupted write (the
:class:`~repro.relational.storage.faults.FaultInjector` can produce both)
is detected as a :class:`~repro.errors.ChecksumError` instead of being
served as valid data.  An installed fault injector sees every physical
transfer and may fail it, tear it, or crash the "machine" mid-operation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import ChecksumError, PageNotFoundError
from repro.relational.storage.page import Page, DEFAULT_PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.storage.faults import FaultInjector


class DiskManager:
    """Allocates page ids and stores checksummed page images.

    ``reads``/``writes`` count physical page transfers; benchmarks reset
    them via :meth:`reset_stats`.  ``fault_injector`` (optional) is
    consulted on every transfer.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._pages: Dict[int, Page] = {}
        #: stored CRC per page, written alongside the image; a torn write
        #: stores the checksum of the *intended* image with a partial one,
        #: which is how the mismatch is detected on the next read.
        self._checksums: Dict[int, int] = {}
        self._next_page_id = 0
        self.reads = 0
        self.writes = 0
        self.fault_injector: Optional["FaultInjector"] = None

    def allocate(self) -> int:
        """Allocate and format a fresh (empty, durable) page."""
        page_id = self._next_page_id
        self._next_page_id += 1
        page = Page(page_id, self.page_size)
        self._pages[page_id] = page
        self._checksums[page_id] = page.content_checksum()
        return page_id

    def read(self, page_id: int) -> Page:
        self.reads += 1
        if self.fault_injector is not None:
            self.fault_injector.on_disk_read(page_id)
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        page = self._pages[page_id]
        stored = self._checksums.get(page_id, 0)
        actual = page.content_checksum()
        if stored != actual:
            raise ChecksumError(page_id, stored, actual)
        return page.copy()

    def write(self, page: Page) -> None:
        self.writes += 1
        image = page.copy()
        checksum = image.content_checksum()
        if self.fault_injector is not None:
            torn = self.fault_injector.on_disk_write(image)
            if torn is not None:
                # Torn write: the partial image lands on disk, but the
                # checksum of the intended image was already in the header
                # sector — the next read detects the mismatch.
                self._pages[page.page_id] = torn
                self._checksums[page.page_id] = checksum
                return
        self._pages[page.page_id] = image
        self._checksums[page.page_id] = checksum

    # -- recovery-side access (no fault injection, no checksum raise) --------

    def page_ids(self) -> List[int]:
        return sorted(self._pages)

    def ensure(self, page_id: int) -> None:
        """Re-format a page slot lost in a crash before it ever hit disk.

        Redo may reference pages that were allocated but whose first image
        never survived; recovery recreates them empty.
        """
        if page_id not in self._pages:
            page = Page(page_id, self.page_size)
            self._pages[page_id] = page
            self._checksums[page_id] = page.content_checksum()
            self._next_page_id = max(self._next_page_id, page_id + 1)

    def read_unchecked(self, page_id: int) -> Tuple[Page, bool]:
        """Read a page for recovery: returns ``(image, checksum_ok)``.

        Unlike :meth:`read`, a corrupt page is returned (flagged) rather
        than raised, so the recovery pass can rebuild it from the log.
        """
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        page = self._pages[page_id]
        ok = self._checksums.get(page_id, 0) == page.content_checksum()
        return page.copy(), ok

    def write_unlogged(self, page: Page) -> None:
        """Recovery-side write: bypasses the fault injector."""
        self.writes += 1
        image = page.copy()
        self._pages[page.page_id] = image
        self._checksums[page.page_id] = image.content_checksum()

    def num_pages(self) -> int:
        return len(self._pages)

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
