"""Simulated disk: a flat page array with I/O counters.

Reads and writes copy the page image, so the buffer pool really is the only
place where live page objects exist — exactly the boundary a clustering
experiment needs to count.
"""

from __future__ import annotations

from typing import Dict

from repro.relational.storage.page import Page, DEFAULT_PAGE_SIZE


class DiskManager:
    """Allocates page ids and stores page images.

    ``reads``/``writes`` count physical page transfers; benchmarks reset
    them via :meth:`reset_stats`.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._pages: Dict[int, Page] = {}
        self._next_page_id = 0
        self.reads = 0
        self.writes = 0

    def allocate(self) -> int:
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = Page(page_id, self.page_size)
        return page_id

    def read(self, page_id: int) -> Page:
        self.reads += 1
        return self._pages[page_id].copy()

    def write(self, page: Page) -> None:
        self.writes += 1
        self._pages[page.page_id] = page.copy()

    def num_pages(self) -> int:
        return len(self._pages)

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
