"""Sharded heap files: hash/range partitioning behind the ``HeapFile`` API.

ROADMAP item 3 (scale-out): a :class:`ShardedHeap` splits one table's rows
across N child :class:`~repro.relational.storage.heap.HeapFile` instances that
share the owning table's buffer pool.  Page ids come from the shared pool, so
RIDs stay globally unique and every facade-level index keeps working
unchanged; a page→shard owner map routes point operations (fetch/update/
delete) to the owning child without probing all of them.

Each shard additionally keeps *zone maps* (per-column min/max, widened on
every write, never shrunk) so the XNF scatter stage can prove a shard cannot
contribute rows to a restriction predicate and skip scanning it entirely —
the work-reduction that makes partitioned extraction faster than a full scan
on a single core.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, ExecutionError
from repro.relational.storage.buffer import BufferPool
from repro.relational.storage.heap import HeapFile, RID
from repro.relational.storage.page import Page


def _stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash for partition routing.

    Python's builtin ``hash`` is salted per process for strings; routing must
    be stable across restarts so repartitioned data and fresh inserts agree.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    return zlib.crc32(repr(value).encode("utf-8"))


class PartitionSpec:
    """How a table's rows map onto shards.

    ``kind`` is ``"hash"`` (``_stable_hash(value) % num_shards``) or
    ``"range"`` (``bisect_right(bounds, value)``; ``bounds`` holds the N-1
    ascending split points, rows with ``value < bounds[0]`` land on shard 0).
    ``NULL`` partition keys always route to shard 0.
    """

    def __init__(
        self,
        kind: str,
        column: str,
        num_shards: int,
        bounds: Optional[Sequence[Any]] = None,
    ):
        if kind not in ("hash", "range"):
            raise CatalogError(f"unknown partition kind {kind!r}")
        if num_shards < 2:
            raise CatalogError("partitioning needs at least 2 shards")
        if kind == "range":
            if not bounds:
                raise CatalogError("range partitioning needs split bounds")
            if len(bounds) != num_shards - 1:
                raise CatalogError(
                    f"range partitioning into {num_shards} shards needs "
                    f"{num_shards - 1} bounds, got {len(bounds)}"
                )
        self.kind = kind
        self.column = column
        self.num_shards = num_shards
        self.bounds: List[Any] = list(bounds) if bounds else []
        self.column_pos: Optional[int] = None

    def bind(self, column_positions: Dict[str, int]) -> None:
        """Resolve the partition column to its position in the row tuple."""
        pos = column_positions.get(self.column)
        if pos is None:
            pos = column_positions.get(self.column.lower())
        if pos is None:
            pos = column_positions.get(self.column.upper())
        if pos is None:
            raise CatalogError(f"partition column {self.column!r} not in table")
        self.column_pos = pos

    def route_value(self, value: Any) -> int:
        if self.kind == "hash":
            return _stable_hash(value) % self.num_shards
        if value is None:
            return 0
        try:
            return bisect_right(self.bounds, value)
        except TypeError:
            return 0

    def route(self, row: Tuple[Any, ...]) -> int:
        assert self.column_pos is not None, "PartitionSpec not bound"
        return self.route_value(row[self.column_pos])

    def range_of(self, shard: int) -> Tuple[Any, Any]:
        """(low, high) key range of a range shard; None = unbounded."""
        low = self.bounds[shard - 1] if shard > 0 else None
        high = self.bounds[shard] if shard < len(self.bounds) else None
        return low, high


class _ZoneMap:
    """Per-shard per-column min/max, widened on write, never shrunk.

    Conservative by construction: deletes do not shrink and updates widen
    both the physical shard and the shard the new key would route to, so a
    pruning decision based on the zone map can only ever skip shards that
    truly hold no matching rows.
    """

    def __init__(self) -> None:
        # col_pos -> [min, max]; a column maps to None once a value defeats
        # ordering (mixed types), meaning "unknown, never prune on this".
        self._ranges: Dict[int, Optional[List[Any]]] = {}

    def widen(self, row: Tuple[Any, ...]) -> None:
        ranges = self._ranges
        for pos, value in enumerate(row):
            if value is None:
                continue
            current = ranges.get(pos, _MISSING)
            if current is _MISSING:
                ranges[pos] = [value, value]
            elif current is not None:
                try:
                    if value < current[0]:
                        current[0] = value
                    elif value > current[1]:
                        current[1] = value
                except TypeError:
                    ranges[pos] = None

    def bounds_for(self, pos: int) -> Optional[Tuple[Any, Any]]:
        current = self._ranges.get(pos, _MISSING)
        if current is _MISSING or current is None:
            return None
        return current[0], current[1]

    def classify(self, pos: int) -> Tuple[str, Optional[Tuple[Any, Any]]]:
        """``("empty", None)`` — no non-NULL value was ever written here
        (NULL-rejecting predicates match nothing); ``("range", (min, max))``
        — bounded; ``("unknown", None)`` — mixed types defeated tracking."""
        current = self._ranges.get(pos, _MISSING)
        if current is _MISSING:
            return "empty", None
        if current is None:
            return "unknown", None
        return "range", (current[0], current[1])

    def clear(self) -> None:
        self._ranges.clear()


_MISSING = object()


class ShardedHeap:
    """N child heap files behind the single-heap API.

    The children share the parent's buffer pool, so page ids (and therefore
    RIDs) are globally unique and can be routed through ``_page_owner``.
    Scans chain the children in shard order, which keeps row order
    deterministic (and equal to the order a scatter/gather over the shards
    produces when results are gathered in shard index order).
    """

    def __init__(self, table: str, buffer_pool: BufferPool, spec: PartitionSpec):
        self.table = table
        self.buffer_pool = buffer_pool
        self.spec = spec
        # The children tag page slots with the *facade* name, not a per-shard
        # name: WAL records and redo both speak the facade name, and a
        # database reopened from disk (which never auto-shards) claims rows
        # by that tag.  Shard separation does not need the tag — each
        # HeapFile only ever reads the pages it registered itself.
        self.shards: List[HeapFile] = [
            HeapFile(table, buffer_pool) for _ in range(spec.num_shards)
        ]
        self.zone_maps: List[_ZoneMap] = [_ZoneMap() for _ in range(spec.num_shards)]
        self._page_owner: Dict[int, int] = {}

    # -- routing ---------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return sum(shard.row_count for shard in self.shards)

    @row_count.setter
    def row_count(self, value: int) -> None:  # pragma: no cover - defensive
        raise ExecutionError("row_count of a sharded heap is derived")

    def owner_of(self, page_id: int) -> Optional[int]:
        return self._page_owner.get(page_id)

    def _shard_for_rid(self, rid: RID) -> HeapFile:
        owner = self._page_owner.get(rid.page_id)
        if owner is None:
            raise ExecutionError(f"fetch of missing row {rid} in {self.table}")
        return self.shards[owner]

    def _claim(self, shard_id: int, rids: Sequence[RID]) -> None:
        owner = self._page_owner
        for rid in rids:
            owner[rid.page_id] = shard_id

    # -- write path ------------------------------------------------------------

    def insert(self, row: Tuple[Any, ...]) -> RID:
        shard_id = self.spec.route(row)
        rid = self.shards[shard_id].insert(row)
        self._page_owner[rid.page_id] = shard_id
        self.zone_maps[shard_id].widen(row)
        return rid

    def append_rows(self, rows: Sequence[Tuple[Any, ...]]) -> List[RID]:
        if not rows:
            return []
        route = self.spec.route
        buckets: Dict[int, List[int]] = {}
        for i, row in enumerate(rows):
            buckets.setdefault(route(row), []).append(i)
        rids: List[Optional[RID]] = [None] * len(rows)
        for shard_id, positions in buckets.items():
            # Re-tuple instead of referencing the caller's tuples: the input
            # arrives in generation order, interleaved across shards, so the
            # original tuple objects of one shard are scattered through the
            # allocator's arena.  Fresh copies built bucket-by-bucket lay
            # each shard's tuples out contiguously, which is what the
            # chunked scan's slot gather walks — sequential scans over a
            # shard otherwise run measurably colder than over a plain heap.
            shard_rows = [(*rows[i],) for i in positions]
            shard_rids = self.shards[shard_id].append_rows(shard_rows)
            self._claim(shard_id, shard_rids)
            zone = self.zone_maps[shard_id]
            for pos, rid, row in zip(positions, shard_rids, shard_rows):
                rids[pos] = rid
                zone.widen(row)
        return rids  # type: ignore[return-value]

    def insert_on_page(self, page: Page, row: Tuple[Any, ...]) -> RID:
        # CoCluster placement: honour the requested page only when it does
        # not cross a shard boundary; otherwise correctness beats clustering
        # and the row goes through normal routing.
        shard_id = self.spec.route(row)
        owner = self._page_owner.get(page.page_id)
        if owner is None or owner == shard_id:
            rid = self.shards[shard_id].insert_on_page(page, row)
            self._page_owner[rid.page_id] = shard_id
            self.zone_maps[shard_id].widen(row)
            return rid
        return self.insert(row)

    def update(self, rid: RID, row: Tuple[Any, ...]) -> None:
        owner = self._page_owner.get(rid.page_id)
        if owner is None:
            raise ExecutionError(f"update of missing row {rid} in {self.table}")
        self.shards[owner].update(rid, row)
        self.zone_maps[owner].widen(row)
        routed = self.spec.route(row)
        if routed != owner:
            # Partition drift: the key changed in place, so the row now lives
            # on the "wrong" physical shard.  Widening the routed shard's zone
            # map too keeps pruning conservative for both views of the row.
            self.zone_maps[routed].widen(row)

    def delete(self, rid: RID) -> None:
        self._shard_for_rid(rid).delete(rid)

    # -- read path -------------------------------------------------------------

    def fetch_row(self, rid: RID) -> Tuple[Any, ...]:
        return self._shard_for_rid(rid).fetch_row(rid)

    def scan(self) -> Iterator[Tuple[RID, Tuple[Any, ...]]]:
        for shard in self.shards:
            yield from shard.scan()

    def scan_row_chunks(self) -> Iterator[List[Tuple[Any, ...]]]:
        for shard in self.shards:
            yield from shard.scan_row_chunks()

    def page_ids(self) -> List[int]:
        ids: List[int] = []
        for shard in self.shards:
            ids.extend(shard.page_ids())
        return ids

    def scan_page_rows(self) -> Iterator[Tuple[int, List[Tuple[Any, ...]]]]:
        for shard in self.shards:
            yield from shard.scan_page_rows()

    def scan_page_pairs(self, page_id: int) -> List[Tuple[RID, Tuple[Any, ...]]]:
        owner = self._page_owner.get(page_id)
        if owner is None:
            return []
        return self.shards[owner].scan_page_pairs(page_id)

    def register_page(self, page_id: int) -> None:  # pragma: no cover - unused
        raise ExecutionError("pages of a sharded heap are registered per shard")

    def num_pages(self) -> int:
        return sum(shard.num_pages() for shard in self.shards)

    def truncate(self) -> None:
        for shard in self.shards:
            shard.truncate()
        for zone in self.zone_maps:
            zone.clear()
        self._page_owner.clear()
