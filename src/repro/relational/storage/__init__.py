"""Storage engine: slotted pages, buffer pool, heap files, CO clustering.

The paper's section 4 argues that composite-object processing needs
*clustering of component tuples belonging to different tables* and cheap,
measurable I/O.  We model a paged store:

* :class:`~repro.relational.storage.disk.DiskManager` — the "disk": a page
  array with read/write counters,
* :class:`~repro.relational.storage.buffer.BufferPool` — LRU page cache with
  hit/miss accounting (the unit every clustering benchmark reports),
* :class:`~repro.relational.storage.heap.HeapFile` — per-table row storage;
  pages are tagged per slot with the owning table, so a single page can hold
  a department tuple next to its employees (CO clustering, experiment E4),
* :class:`~repro.relational.storage.cluster.CoCluster` — lays out
  parent/child tuples of a relationship contiguously, the Starburst "IMS
  attachment" style clustering the paper cites,
* :class:`~repro.relational.storage.faults.FaultInjector` — deterministic
  fault injection (I/O errors, torn writes, dropped flushes, hard crash
  points) for the crash-recovery property harness.
"""

from repro.relational.storage.disk import DiskManager
from repro.relational.storage.buffer import BufferPool
from repro.relational.storage.heap import HeapFile, RID
from repro.relational.storage.page import Page, estimate_row_size
from repro.relational.storage.cluster import CoCluster
from repro.relational.storage.faults import FaultInjector, FaultPlan

__all__ = [
    "DiskManager",
    "BufferPool",
    "HeapFile",
    "RID",
    "Page",
    "estimate_row_size",
    "CoCluster",
    "FaultInjector",
    "FaultPlan",
]
