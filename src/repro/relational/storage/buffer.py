"""Buffer pool: LRU page cache over the simulated disk.

Pin/unpin discipline mirrors a textbook buffer manager.  ``hits`` and
``misses`` are the primary metric of the clustering benchmark (experiment
E4): a CO-clustered layout touches far fewer distinct pages per composite
object, which shows up directly as fewer misses for the same trace.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict

from repro.errors import ExecutionError
from repro.relational.storage.disk import DiskManager
from repro.relational.storage.page import Page


class BufferPool:
    """Fixed-capacity LRU cache of pages with pin counting."""

    def __init__(self, disk: DiskManager, capacity: int = 128):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        # One latch over frame/pin bookkeeping: fetch/unpin/eviction all
        # mutate the LRU order and pin counts, which must stay coherent
        # when session threads share the pool.  RLock because a flush can
        # call back into the WAL-ahead hook while the latch is held (lock
        # order is always buffer -> wal, never the reverse).
        self._latch = threading.RLock()
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: total pin operations (fetches + page allocations), for metrics
        self.pin_count = 0
        #: WAL-ahead hook: called with the page about to be written to
        #: disk (eviction or checkpoint); the engine wires this to a WAL
        #: flush up to the page's LSN so no page with unlogged changes can
        #: reach stable storage.
        self.pre_write_hook = None

    def _write_page(self, page: Page) -> None:
        if self.pre_write_hook is not None:
            self.pre_write_hook(page)
        self.disk.write(page)

    # -- page access -------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        """Pin and return the page, reading it from disk on a miss."""
        with self._latch:
            self.pin_count += 1
            if page_id in self._frames:
                self.hits += 1
                self._frames.move_to_end(page_id)
                self._pins[page_id] = self._pins.get(page_id, 0) + 1
                return self._frames[page_id]
            self.misses += 1
            self._evict_if_full()
            page = self.disk.read(page_id)
            self._frames[page_id] = page
            self._pins[page_id] = 1
            return page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        with self._latch:
            pins = self._pins.get(page_id, 0)
            if pins <= 0:
                raise ExecutionError(f"unpin of unpinned page {page_id}")
            self._pins[page_id] = pins - 1
            if dirty:
                self._frames[page_id].dirty = True

    def new_page(self) -> Page:
        """Allocate a fresh page on disk and pin it in the pool."""
        with self._latch:
            self.pin_count += 1
            page_id = self.disk.allocate()
            self._evict_if_full()
            page = Page(page_id, self.disk.page_size)
            self._frames[page_id] = page
            self._pins[page_id] = 1
            return page

    # -- maintenance ---------------------------------------------------------

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk (checkpoint)."""
        with self._latch:
            for page in self._frames.values():
                if page.dirty:
                    self._write_page(page)
                    page.dirty = False

    def clear(self) -> None:
        """Flush and drop all frames — simulates a cold cache."""
        with self._latch:
            self.flush_all()
            unpinned = [pid for pid, pins in self._pins.items() if pins == 0]
            for pid in unpinned:
                del self._frames[pid]
                del self._pins[pid]

    def invalidate(self) -> None:
        """Drop every frame WITHOUT writing anything back.

        Used by crash recovery: the recovery pass rebuilds pages directly
        on disk, so any frame still cached here is stale (and possibly
        pinned state left over from the statement that crashed).
        """
        with self._latch:
            self._frames.clear()
            self._pins.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.pin_count = 0

    def metrics(self) -> Dict[str, Any]:
        """Counter snapshot for ``Database.metrics_snapshot()``."""
        looked_up = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pins": self.pin_count,
            "hit_rate": round(self.hits / looked_up, 4) if looked_up else None,
            "resident_pages": len(self._frames),
            "pinned_pages": sum(1 for pins in self._pins.values() if pins > 0),
            "capacity": self.capacity,
        }

    def _evict_if_full(self) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = None
            for pid in self._frames:  # OrderedDict iterates LRU-first
                if self._pins.get(pid, 0) == 0:
                    victim_id = pid
                    break
            if victim_id is None:
                raise ExecutionError("buffer pool exhausted: all pages pinned")
            # Write back BEFORE dropping the frame: a failed write must
            # leave the victim resident and dirty, because this frame is
            # the only copy of changes the WAL already promised.  Dropping
            # first and then failing the write would silently revert the
            # page to its stale disk image on the next fetch — later
            # inserts would reuse slots that committed records still
            # occupy in the log, and the page's eventual successful flush
            # would carry a page LSN that makes redo skip those records.
            victim = self._frames[victim_id]
            if victim.dirty:
                self._write_page(victim)
                victim.dirty = False
            del self._frames[victim_id]
            del self._pins[victim_id]
            self.evictions += 1
