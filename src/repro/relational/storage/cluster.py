"""Composite-object clustering.

Section 4 of the paper: "relational DBMSs typically allow clustering of data
along tables, which is inappropriate for composite objects, where we need
clustering of component tuples belonging to different tables" — and cites
Starburst's IMS-attachment-style clustering of a relationship's parent with
its children.

:class:`CoCluster` implements exactly that: a bulk-load path that places a
parent row and all of its child rows (possibly from several child tables) on
the same page run.  Reading the composite object back then touches ~1 page
per object instead of one page run per component table (experiment E4).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.relational.storage.buffer import BufferPool
from repro.relational.storage.heap import HeapFile, RID
from repro.relational.storage.page import Page


class CoCluster:
    """Bulk loader that co-locates related rows of different tables."""

    def __init__(self, buffer_pool: BufferPool):
        self.buffer_pool = buffer_pool
        self._current: Optional[Page] = None

    def load_group(
        self,
        group: Sequence[Tuple[HeapFile, Tuple[Any, ...]]],
    ) -> List[RID]:
        """Store one composite-object instance contiguously.

        *group* lists (heap_file, row) pairs in the desired physical order,
        typically parent first, then children.  Rows are packed onto the
        current page while they fit; a fresh page starts when they do not.
        Returns the RIDs in group order.
        """
        rids: List[RID] = []
        for heap_file, row in group:
            page = self._ensure_page_for(row)
            rids.append(heap_file.insert_on_page(page, row))
        return rids

    def finish(self) -> None:
        """Release the in-progress page; call once after the last group."""
        if self._current is not None:
            self.buffer_pool.unpin(self._current.page_id, dirty=True)
            self._current = None

    def __enter__(self) -> "CoCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()

    def _ensure_page_for(self, row: Tuple[Any, ...]) -> Page:
        if self._current is not None and self._current.can_fit(row):
            return self._current
        if self._current is not None:
            self.buffer_pool.unpin(self._current.page_id, dirty=True)
        self._current = self.buffer_pool.new_page()
        return self._current
