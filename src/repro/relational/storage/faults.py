"""Deterministic, seedable fault injection for the storage and WAL paths.

A :class:`FaultInjector` is installed into a :class:`DiskManager` and a
:class:`WriteAheadLog` (see :meth:`FaultInjector.install`) and is consulted
on every physical operation — page read, page write, WAL flush.  It can
then, on a schedule that is a pure function of its seed and configured
rates:

* raise a transient :class:`~repro.errors.IOFaultError` (the engine's
  bounded retry-with-backoff handles these),
* tear a page write — a partial image lands on disk under the checksum of
  the intended image, so the next read raises
  :class:`~repro.errors.ChecksumError`,
* drop a WAL flush — the flush silently persists nothing; the tail stays
  buffered and the caller observes a stable-LSN that did not advance,
* crash hard — raise :class:`~repro.errors.SimulatedCrash` (a
  ``BaseException``) at the Nth operation, losing every un-flushed buffer.

Every injected fault is recorded in :attr:`counts` and :attr:`log`, and the
set of pages whose *latest* image is torn is tracked in
:attr:`torn_pages` so a crash-recovery harness can assert that recovery
detected every one of them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import IOFaultError, SimulatedCrash
from repro.relational.storage.page import Page


@dataclass
class FaultPlan:
    """Probabilities per operation class (0.0 disables a fault kind)."""

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    torn_write_rate: float = 0.0
    drop_flush_rate: float = 0.0


class FaultInjector:
    """Seedable deterministic fault source for disk and WAL operations.

    Parameters
    ----------
    seed:
        Seeds the private RNG; the same seed and the same operation
        sequence produce the same faults.
    plan:
        Per-operation fault probabilities.
    crash_after_ops:
        Raise :class:`SimulatedCrash` when the global operation counter
        reaches this value (None = never).  Operations are counted across
        reads, writes and flushes, so a crash point lands anywhere in the
        I/O stream.
    """

    def __init__(
        self,
        seed: int = 0,
        plan: Optional[FaultPlan] = None,
        crash_after_ops: Optional[int] = None,
    ):
        self.seed = seed
        self.plan = plan or FaultPlan()
        self.crash_after_ops = crash_after_ops
        self._rng = random.Random(seed)
        self.armed = False
        self.ops = 0
        self.counts: Dict[str, int] = {
            "io_errors": 0,
            "torn_writes": 0,
            "torn_flushes": 0,
            "dropped_flushes": 0,
            "crashes": 0,
        }
        self.log: List[Tuple[int, str, str]] = []  # (op index, site, fault)
        #: pages whose latest on-disk image is torn (clean rewrite clears)
        self.torn_pages: Set[int] = set()
        #: one-shot targeted schedules (satellite/unit tests)
        self._fail_reads = 0
        self._fail_writes = 0
        self._drop_flushes = 0
        self._tear_next_writes = 0
        self._tear_flushes = 0

    # -- arming ------------------------------------------------------------

    def install(self, database) -> "FaultInjector":
        """Wire this injector into *database*'s disk and WAL paths."""
        database.disk.fault_injector = self
        database.txn_manager.wal.fault_injector = self
        return self

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        """Stop injecting (recovery and test assertions run un-faulted)."""
        self.armed = False

    # -- targeted one-shot schedules ---------------------------------------

    def fail_next_reads(self, n: int) -> None:
        self._fail_reads = n

    def fail_next_writes(self, n: int) -> None:
        self._fail_writes = n

    def drop_next_flushes(self, n: int) -> None:
        self._drop_flushes = n

    def tear_next_writes(self, n: int) -> None:
        self._tear_next_writes = n

    def tear_next_flushes(self, n: int) -> None:
        self._tear_flushes = n

    # -- hook sites --------------------------------------------------------

    def on_disk_read(self, page_id: int) -> None:
        if not self.armed:
            return
        self._tick("disk.read")
        if self._fail_reads > 0:
            self._fail_reads -= 1
            self._record("disk.read", "io_error")
            raise IOFaultError(f"injected read error on page {page_id}")
        if self._roll(self.plan.read_error_rate):
            self._record("disk.read", "io_error")
            raise IOFaultError(f"injected read error on page {page_id}")

    def on_disk_write(self, image: Page) -> Optional[Page]:
        """Returns a *torn* partial image to store, or None for a clean write."""
        if not self.armed:
            self.torn_pages.discard(image.page_id)
            return None
        self._tick("disk.write")
        if self._fail_writes > 0:
            self._fail_writes -= 1
            self._record("disk.write", "io_error")
            raise IOFaultError(f"injected write error on page {image.page_id}")
        if self._roll(self.plan.write_error_rate):
            self._record("disk.write", "io_error")
            raise IOFaultError(f"injected write error on page {image.page_id}")
        tear = False
        if self._tear_next_writes > 0:
            self._tear_next_writes -= 1
            tear = True
        elif self._roll(self.plan.torn_write_rate):
            tear = True
        if tear:
            self._record("disk.write", "torn_write")
            self.torn_pages.add(image.page_id)
            torn = image.copy()
            # A torn write persists only a prefix of the sectors: keep the
            # first half of the slots, lose the rest (and leave used_bytes
            # stale, as a real partial write would).  An empty page has no
            # slots to lose, so corrupt its fill counter instead — either
            # way the stored image differs from the checksummed one.
            if torn.slots:
                torn.slots = torn.slots[: len(torn.slots) // 2]
            else:
                torn.used_bytes += 1
            return torn
        self.torn_pages.discard(image.page_id)
        return None

    def on_wal_flush(self, n_records: int) -> str:
        """Disposition of a WAL flush: ``"ok"``, ``"drop"`` (persist
        nothing, tail stays buffered) or ``"torn"`` (persist the batch but
        corrupt its final record — recovery truncates the log there)."""
        if not self.armed:
            return "ok"
        self._tick("wal.flush")
        if self._tear_flushes > 0:
            self._tear_flushes -= 1
            self._record("wal.flush", "torn_flush")
            return "torn"
        if self._drop_flushes > 0:
            self._drop_flushes -= 1
            self._record("wal.flush", "dropped_flush")
            return "drop"
        if self._roll(self.plan.drop_flush_rate):
            self._record("wal.flush", "dropped_flush")
            return "drop"
        return "ok"

    # -- internals ---------------------------------------------------------

    def _tick(self, site: str) -> None:
        self.ops += 1
        if self.crash_after_ops is not None and self.ops >= self.crash_after_ops:
            self.counts["crashes"] += 1
            self.log.append((self.ops, site, "crash"))
            self.armed = False  # the machine is dead; nothing fires after
            raise SimulatedCrash(self.ops, site)

    def _roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def _record(self, site: str, fault: str) -> None:
        key = {
            "io_error": "io_errors",
            "torn_write": "torn_writes",
            "torn_flush": "torn_flushes",
            "dropped_flush": "dropped_flushes",
        }[fault]
        self.counts[key] += 1
        self.log.append((self.ops, site, fault))

    def injected_total(self) -> int:
        return sum(self.counts.values())
