"""Slotted pages.

A page stores a list of slots; each occupied slot carries the owning table's
name and the row tuple.  Tagging slots with a table name (rather than owning
whole pages per table) is what lets composite-object clustering co-locate a
parent tuple with its children on one page, as the paper requires for I/O
reduction (section 4).

Byte accounting is simulated: rows are costed by :func:`estimate_row_size`
against a fixed page budget, so fan-out and page-fill behave like a real
slotted page without binary serialisation overhead.
"""

from __future__ import annotations

import zlib
from typing import Any, List, Optional, Tuple

#: Default page size in (simulated) bytes.
DEFAULT_PAGE_SIZE = 4096

#: Fixed per-slot overhead (slot directory entry + record header).
SLOT_OVERHEAD = 8


def estimate_row_size(row: Tuple[Any, ...]) -> int:
    """Estimate the on-page byte size of a row.

    Integers and floats cost 8 bytes, booleans and NULLs 1 byte, strings
    their length plus a 4-byte length prefix.
    """
    size = SLOT_OVERHEAD
    for value in row:
        if value is None or isinstance(value, bool):
            size += 1
        elif isinstance(value, (int, float)):
            size += 8
        elif isinstance(value, str):
            size += len(value) + 4
        else:  # pragma: no cover - defensive: unknown payloads cost a word
            size += 8
    return size


class Page:
    """An in-memory image of one disk page.

    Slots are stable: deleting a row leaves a tombstone (``None``) so RIDs of
    other rows never move.  ``used_bytes`` tracks the simulated fill level.
    """

    __slots__ = (
        "page_id", "page_size", "slots", "used_bytes", "dirty", "page_lsn",
        "free_hint",
    )

    def __init__(self, page_id: int, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_id = page_id
        self.page_size = page_size
        # Each slot is None (free) or a (table_name, row_tuple) pair.
        self.slots: List[Optional[Tuple[str, Tuple[Any, ...]]]] = []
        self.used_bytes = 0
        self.dirty = False
        #: LSN of the last WAL record applied to this page; the redo pass
        #: of crash recovery replays a record only when the page LSN is
        #: older, which makes replay idempotent (ARIES repeating history).
        self.page_lsn = 0
        #: Upper bound on the number of tombstoned slots.  Purely a hint:
        #: inserts skip the free-slot scan when it is zero (the append-only
        #: common case, previously O(slots) per insert) and resync it when a
        #: scan comes up empty — code that rebuilds ``slots`` directly
        #: (recovery replay, fault injection) may leave it stale either way.
        self.free_hint = 0

    def free_bytes(self) -> int:
        return self.page_size - self.used_bytes

    def can_fit(self, row: Tuple[Any, ...], size: Optional[int] = None) -> bool:
        if size is None:
            size = estimate_row_size(row)
        return size <= self.free_bytes()

    def insert(
        self, table: str, row: Tuple[Any, ...], size: Optional[int] = None
    ) -> int:
        """Insert a row, returning its slot number.

        The caller must have checked :meth:`can_fit` (and may pass the row
        size it already computed for that check); oversized rows are still
        stored (a row larger than a page must live somewhere) but only on an
        otherwise-empty page.
        """
        self.used_bytes += size if size is not None else estimate_row_size(row)
        self.dirty = True
        if self.free_hint:
            for slot, content in enumerate(self.slots):
                if content is None:
                    self.slots[slot] = (table, row)
                    self.free_hint -= 1
                    return slot
            self.free_hint = 0
        self.slots.append((table, row))
        return len(self.slots) - 1

    def read(self, slot: int) -> Optional[Tuple[str, Tuple[Any, ...]]]:
        if 0 <= slot < len(self.slots):
            return self.slots[slot]
        return None

    def update(self, slot: int, row: Tuple[Any, ...]) -> None:
        table, old = self.slots[slot]  # raises if slot empty - caller's bug
        self.used_bytes += estimate_row_size(row) - estimate_row_size(old)
        self.slots[slot] = (table, row)
        self.dirty = True

    def delete(self, slot: int) -> None:
        content = self.slots[slot]
        if content is not None:
            self.used_bytes -= estimate_row_size(content[1])
            self.slots[slot] = None
            self.dirty = True
            self.free_hint += 1

    def clear(self) -> None:
        """Drop every slot at once (exclusive-owner truncate fast path)."""
        self.slots.clear()
        self.used_bytes = 0
        self.free_hint = 0
        self.dirty = True

    def copy(self) -> "Page":
        """Deep-enough copy used to simulate a disk read/write boundary."""
        clone = Page(self.page_id, self.page_size)
        clone.slots = list(self.slots)
        clone.used_bytes = self.used_bytes
        clone.page_lsn = self.page_lsn
        clone.free_hint = self.free_hint
        return clone

    def content_checksum(self) -> int:
        """CRC32 over the page image (slots, fill level, page LSN).

        Row values are ints, floats, strings, bools and None, whose reprs
        are stable, so the checksum is deterministic across runs.
        """
        image = repr((self.page_id, self.page_lsn, self.used_bytes, self.slots))
        return zlib.crc32(image.encode("utf-8"))

    def recompute_used_bytes(self) -> None:
        """Rebuild the fill counter from live slots (crash recovery)."""
        self.used_bytes = sum(
            estimate_row_size(content[1])
            for content in self.slots
            if content is not None
        )
