"""Exception hierarchy for the repro package.

Every error raised by the relational engine or the XNF layer derives from
:class:`ReproError`, so applications can catch one base class.  The split
mirrors the classic SQLSTATE families: syntax, semantic (catalog/type),
integrity, transaction, and runtime execution errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package.

    ``retryable`` is the contract of the error taxonomy: when True, the
    failed operation may succeed if simply re-run (after rolling back any
    open transaction and backing off) — the condition is a transient
    artifact of concurrency or I/O, not of the statement itself.
    :meth:`Database.run_retryable` automates exactly this loop.
    """

    #: True when re-running the failed operation may succeed (deadlock
    #: victims, serialization conflicts, admission rejects, transient I/O)
    retryable = False

    #: suggested initial backoff before retrying, in seconds (None when the
    #: error is not retryable).  The wire protocol serializes this alongside
    #: ``retryable`` so remote clients back off like in-process callers.
    backoff_hint_s: "float | None" = None


class SQLError(ReproError):
    """Base class for errors raised by the relational engine."""


class ParseError(SQLError):
    """Raised when SQL or XNF text cannot be parsed.

    Carries the offending position so callers can point at the token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class CatalogError(SQLError):
    """Unknown or duplicate table/column/index/view names."""


class TypeCheckError(SQLError):
    """Expression or value does not match the declared SQL type."""


class IntegrityError(SQLError):
    """Constraint violation: NOT NULL, PRIMARY KEY, FOREIGN KEY."""


class ExecutionError(SQLError):
    """Runtime failure while evaluating a plan (e.g. division by zero)."""


class TransactionError(SQLError):
    """Illegal transaction state transition or lock protocol violation."""


class DeadlockError(TransactionError):
    """Lock request aborted to break a deadlock.

    The engine uses no-wait table locks, so the victim loses no work
    beyond its own statement; re-running the transaction usually succeeds.
    """

    retryable = True
    backoff_hint_s = 0.002


class SerializationError(TransactionError):
    """First-committer-wins write-write conflict under snapshot isolation.

    Raised when a transaction tries to modify a row version that was
    committed after the transaction's snapshot was taken.  Roll back and
    re-run on a fresh snapshot (see :meth:`Database.run_retryable`).
    """

    retryable = True
    backoff_hint_s = 0.002


class AdmissionError(TransactionError):
    """Admission control rejected a new transaction.

    The configured ``max_concurrent_txns`` ceiling was reached; retry
    after backing off instead of queueing into a livelock.

    The backoff hint is an order of magnitude above the conflict errors':
    an admission reject means the whole system is at capacity, so hammering
    it on a 2 ms cadence would only prolong the overload.
    """

    retryable = True
    backoff_hint_s = 0.02


class AuthError(SQLError):
    """Wire-protocol authentication failure (bad or missing token)."""


class ServerShutdownError(TransactionError):
    """The wire server is draining for shutdown.

    In-flight statements are allowed to finish, but new work is refused.
    Retryable because the standard deployment answer is "reconnect and
    re-run" (against the restarted server or another replica), with a
    backoff generous enough to ride out a restart.
    """

    retryable = True
    backoff_hint_s = 0.05


class StorageError(SQLError):
    """Base class for failures at the page/disk boundary."""


class PageNotFoundError(StorageError):
    """Read of a page id the disk never allocated."""

    def __init__(self, page_id: int):
        self.page_id = page_id
        super().__init__(f"page {page_id} is not allocated")


class ChecksumError(StorageError):
    """A page image failed checksum verification (torn/corrupt write)."""

    def __init__(self, page_id: int, expected: int, actual: int):
        self.page_id = page_id
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"page {page_id} checksum mismatch: "
            f"expected {expected:#010x}, got {actual:#010x}"
        )


class IOFaultError(StorageError):
    """An (injected or real) I/O error on the disk or WAL path.

    ``transient`` errors are safe to retry after backing off; persistent
    ones are not.
    """

    def __init__(self, message: str, transient: bool = True):
        self.transient = transient
        # instance-level override: only transient faults are retryable
        self.retryable = transient
        self.backoff_hint_s = 0.001 if transient else None
        super().__init__(message)


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent state."""


class ResourceExhaustedError(ReproError):
    """An execution guard tripped: fixpoint round/row limit or query
    timeout.  The engine aborts the statement but leaves catalog, scratch
    pool and plan cache consistent."""


class SimulatedCrash(BaseException):
    """A fault-injected hard crash (power failure) at an I/O operation.

    Derives from :class:`BaseException` so no engine-level ``except
    Exception`` handler can accidentally swallow it — exactly like a real
    power cut, the process state after this point is unreachable.  Only the
    crash-test harness catches it.
    """

    def __init__(self, op_index: int, site: str):
        self.op_index = op_index
        self.site = site
        super().__init__(f"simulated crash at I/O op {op_index} ({site})")


class XNFError(ReproError):
    """Base class for errors raised by the XNF composite-object layer."""


class SchemaGraphError(XNFError):
    """Ill-formed composite-object definition (well-formedness violations)."""


class PathError(XNFError):
    """Invalid path expression (unknown relationship, ambiguous direction)."""


class UpdatabilityError(XNFError):
    """Manipulation attempted on a non-updatable node or relationship."""


class CursorError(XNFError):
    """Illegal cursor operation (closed cursor, unpositioned fetch)."""


class HandleEvictedError(CursorError):
    """A server-side handle (prepared statement, fetch cursor, composite
    object, CO cursor) was evicted by the session's handle cap before this
    access.  Deliberately **not** retryable: the handle is gone for good, the
    client must re-create it (re-PREPARE / re-run the query), not replay the
    same frame."""
