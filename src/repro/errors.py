"""Exception hierarchy for the repro package.

Every error raised by the relational engine or the XNF layer derives from
:class:`ReproError`, so applications can catch one base class.  The split
mirrors the classic SQLSTATE families: syntax, semantic (catalog/type),
integrity, transaction, and runtime execution errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SQLError(ReproError):
    """Base class for errors raised by the relational engine."""


class ParseError(SQLError):
    """Raised when SQL or XNF text cannot be parsed.

    Carries the offending position so callers can point at the token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class CatalogError(SQLError):
    """Unknown or duplicate table/column/index/view names."""


class TypeCheckError(SQLError):
    """Expression or value does not match the declared SQL type."""


class IntegrityError(SQLError):
    """Constraint violation: NOT NULL, PRIMARY KEY, FOREIGN KEY."""


class ExecutionError(SQLError):
    """Runtime failure while evaluating a plan (e.g. division by zero)."""


class TransactionError(SQLError):
    """Illegal transaction state transition or lock protocol violation."""


class DeadlockError(TransactionError):
    """Lock request aborted to break a deadlock."""


class XNFError(ReproError):
    """Base class for errors raised by the XNF composite-object layer."""


class SchemaGraphError(XNFError):
    """Ill-formed composite-object definition (well-formedness violations)."""


class PathError(XNFError):
    """Invalid path expression (unknown relationship, ambiguous direction)."""


class UpdatabilityError(XNFError):
    """Manipulation attempted on a non-updatable node or relationship."""


class CursorError(XNFError):
    """Illegal cursor operation (closed cursor, unpositioned fetch)."""
